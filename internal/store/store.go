// Package store is ZLB's durable block store: an append-only, segmented
// block log with CRC-framed records (internal/wire), periodic UTXO
// checkpoints, and supersede records so the fork merge of the Blockchain
// Manager — which rewrites blocks at an existing index — replays cleanly
// instead of conflicting with the block it replaced.
//
// Layout of a replica's data directory:
//
//	<dir>/log/wal-00000001.seg   record frames, rolled at SegmentBytes
//	<dir>/log/wal-00000002.seg   ...
//	<dir>/checkpoint.ckpt        latest wire.EncodeCheckpoint snapshot
//
// Records are framed by wire.AppendRecord (length | crc32 | kind |
// payload). On Open the segments are replayed in order; a torn frame at
// the tail of the LAST segment is a crash artifact and is truncated
// away, while corruption anywhere else fails the open — silent data loss
// in the middle of the chain must never be repaired automatically.
//
// A checkpoint snapshots the entire ledger state at a height
// (wire.CheckpointState). Cutting one prunes every segment that only
// holds records at or below the checkpoint height, so the log tail stays
// short no matter how long the chain gets — exactly what lets a standby
// replica catch up from "checkpoint + tail" instead of replaying from
// genesis (catchup.go).
//
// The store is safe for concurrent use. Appends go through a buffered
// writer; Flush (or Close) pushes them to the OS, and Options.Fsync
// additionally fsyncs on every checkpoint cut.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// Options tunes a store.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int
	// CheckpointEvery cuts a checkpoint automatically every N appended
	// blocks (0 = only explicit WriteCheckpoint calls).
	CheckpointEvery uint64
	// Fsync forces an fsync after every checkpoint cut and on Close.
	// Appends are still buffered; a crash can lose the unflushed tail,
	// which recovery handles as a torn tail.
	Fsync bool
}

// Errors returned by the store.
var (
	// ErrCorrupt marks unrecoverable log damage: a bad frame that is not
	// at the tail of the last segment.
	ErrCorrupt = errors.New("store: corrupt block log")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
)

// Record is one replayed entry of the block log.
type Record struct {
	// Supersede marks a merged block: replay applies it through
	// bm.MergeBlock so it replaces the block at its index.
	Supersede bool
	Block     *wire.BlockRecord
}

// segment is one on-disk log file.
type segment struct {
	seq  uint64
	path string
	// firstK/lastK bound the chain indices recorded in the segment
	// (checkpoint pruning drops segments entirely below a checkpoint).
	firstK, lastK uint64
	records       int
}

// Store is a durable block store rooted at one replica's data directory.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	segments []*segment
	active   *os.File
	buffered []byte // appended frames not yet written to the active file

	// In-memory replica of the log tail (records after the latest
	// checkpoint) — the catch-up server serves from here without disk
	// reads, and recovery replays it onto the checkpoint.
	checkpoint *wire.CheckpointState
	tail       []Record

	lastK      uint64
	haveBlocks bool
	sinceCkpt  uint64
	closed     bool
	// byIndex tracks the digest first stored for every index, so appends
	// are idempotent across a crash-restart overlap.
	byIndex map[uint64]types.Digest
}

// Open opens (creating if necessary) the store at dir and recovers its
// state: latest checkpoint plus the replayed log tail.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if err := os.MkdirAll(filepath.Join(dir, "log"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, byIndex: make(map[uint64]types.Digest)}
	if err := s.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := s.loadSegments(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) checkpointPath() string { return filepath.Join(s.dir, "checkpoint.ckpt") }

// loadCheckpoint reads the checkpoint file if present. A checkpoint that
// fails to decode is ignored (treated as absent): it was torn mid-write,
// and the log still holds every record since the previous prune... which
// is exactly why pruning happens only after the new checkpoint is
// durably in place (WriteCheckpoint writes to a temp file and renames).
func (s *Store) loadCheckpoint() error {
	raw, err := os.ReadFile(s.checkpointPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	cp, err := wire.DecodeCheckpoint(raw)
	if err != nil {
		return nil
	}
	s.checkpoint = cp
	s.lastK = cp.LastK
	s.haveBlocks = len(cp.Blocks) > 0
	for _, b := range cp.Blocks {
		if _, ok := s.byIndex[b.K]; !ok {
			s.byIndex[b.K] = b.Digest
		}
	}
	return nil
}

// loadSegments scans the log directory, replays every record and
// truncates a torn tail off the last segment.
func (s *Store) loadSegments() error {
	logDir := filepath.Join(s.dir, "log")
	entries, err := os.ReadDir(logDir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); n != 1 || err != nil {
			continue
		}
		s.segments = append(s.segments, &segment{seq: seq, path: filepath.Join(logDir, e.Name())})
	}
	sort.Slice(s.segments, func(i, j int) bool { return s.segments[i].seq < s.segments[j].seq })

	for i, seg := range s.segments {
		raw, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		last := i == len(s.segments)-1
		good, err := s.replaySegment(seg, raw, last)
		if err != nil {
			return err
		}
		if good < len(raw) {
			// Torn tail (crash mid-append): truncate to the last good frame.
			if err := os.Truncate(seg.path, int64(good)); err != nil {
				return fmt.Errorf("store: truncating torn tail: %w", err)
			}
		}
	}
	// Records folded into the loaded checkpoint are dropped from the
	// replay tail here, against the checkpoint itself — not against the
	// log's cut marker, whose durability is not ordered with the
	// checkpoint file's. Replaying a folded record would be idempotent
	// anyway (bm dedups by digest and merged-set), but the tail also
	// feeds the catch-up server and must stay "records after the cut".
	if s.checkpoint != nil {
		s.tail = tailAfterCheckpoint(s.tail, s.checkpoint.LastK)
	}
	if len(s.segments) == 0 {
		if err := s.rollSegmentLocked(); err != nil {
			return err
		}
		return nil
	}
	// Re-open the last segment for appending.
	seg := s.segments[len(s.segments)-1]
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.active = f
	return nil
}

// replaySegment applies a segment's frames to the in-memory state. It
// returns the byte offset of the end of the last good frame. Only true
// crash artifacts in the last segment are tolerated (and truncated by
// the caller): a frame cut short by EOF, or a CRC-bad frame whose
// remaining bytes are all zero (a tail of unwritten pages). A CRC-valid
// frame with an undecodable payload, or a CRC mismatch with real data
// after it, is corruption wherever it sits — truncating there would
// silently delete good records, so the open fails instead.
func (s *Store) replaySegment(seg *segment, raw []byte, lastSegment bool) (int, error) {
	rest := raw
	good := 0
	for len(rest) > 0 {
		kind, payload, next, err := DecodeFrame(rest)
		if err != nil {
			if lastSegment && errors.Is(err, wire.ErrRecordTruncated) {
				return good, nil // frame ran past EOF: torn write
			}
			if lastSegment && allZero(rest) {
				return good, nil // zero-page tail: torn write
			}
			return good, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.path, good, err)
		}
		if err := s.applyRecord(seg, kind, payload); err != nil {
			return good, fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.path, good, err)
		}
		good += len(rest) - len(next)
		rest = next
	}
	return good, nil
}

// allZero reports whether every byte of b is zero.
func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// DecodeFrame reads one record frame (re-exported for the catch-up
// client, which re-verifies the CRCs of a streamed log tail).
func DecodeFrame(buf []byte) (wire.RecordKind, []byte, []byte, error) {
	return wire.DecodeRecord(buf)
}

// applyRecord folds one decoded record into the in-memory state.
func (s *Store) applyRecord(seg *segment, kind wire.RecordKind, payload []byte) error {
	switch kind {
	case wire.RecordBlock, wire.RecordSupersede:
		rec, err := wire.DecodeBlockRecord(payload)
		if err != nil {
			return err
		}
		s.noteBlock(seg, rec)
		s.tail = append(s.tail, Record{Supersede: kind == wire.RecordSupersede, Block: rec})
	case wire.RecordCheckpoint:
		// Cut marker: the payload is the cut height (big-endian LastK),
		// recording where in the log a checkpoint was taken. It is
		// forensic only — recovery filters the tail against the loaded
		// checkpoint itself (loadSegments), never against the marker,
		// because the marker's durability is not ordered with the
		// checkpoint file's.
		if len(payload) != 8 {
			return fmt.Errorf("checkpoint marker with %d-byte payload", len(payload))
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}

func (s *Store) noteBlock(seg *segment, rec *wire.BlockRecord) {
	if seg != nil {
		if seg.records == 0 || rec.K < seg.firstK {
			seg.firstK = rec.K
		}
		if rec.K > seg.lastK {
			seg.lastK = rec.K
		}
		seg.records++
	}
	if rec.K > s.lastK || !s.haveBlocks {
		s.lastK = rec.K
	}
	s.haveBlocks = true
	if _, ok := s.byIndex[rec.K]; !ok {
		s.byIndex[rec.K] = rec.Digest
	}
}

// LastK returns the highest chain index the store holds (and whether it
// holds any block at all).
func (s *Store) LastK() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastK, s.haveBlocks
}

// Tail returns the replayed records after the latest checkpoint, in log
// order. The slice is a copy; the records are shared.
func (s *Store) Tail() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.tail))
	copy(out, s.tail)
	return out
}

// Checkpoint returns the latest checkpoint snapshot, or nil.
func (s *Store) Checkpoint() *wire.CheckpointState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoint
}

// AppendBlock persists a committed block. Appends are idempotent: a
// block whose index already holds the same digest is skipped, which
// makes the restart overlap (re-committing the last recovered instance
// after a catch-up) harmless.
func (s *Store) AppendBlock(b *bm.Block, attempt uint32) error {
	return s.append(b, attempt, false)
}

// AppendMerge persists a merged (superseding) block: on replay it is
// routed through bm.MergeBlock, replacing its predecessor at the index
// instead of conflicting with it.
func (s *Store) AppendMerge(b *bm.Block, attempt uint32) error {
	return s.append(b, attempt, true)
}

func (s *Store) append(b *bm.Block, attempt uint32, supersede bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if prev, ok := s.byIndex[b.K]; ok && prev == b.Digest && !supersede {
		return nil
	}
	rec := &wire.BlockRecord{K: b.K, Attempt: attempt, Digest: b.Digest, Txs: b.Txs}
	payload, err := wire.EncodeBlockRecord(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	kind := wire.RecordBlock
	if supersede {
		kind = wire.RecordSupersede
	}
	s.buffered = wire.AppendRecord(s.buffered, kind, payload)
	seg := s.segments[len(s.segments)-1]
	s.noteBlock(seg, rec)
	s.tail = append(s.tail, Record{Supersede: supersede, Block: rec})
	if err := s.maybeFlushLocked(); err != nil {
		return err
	}
	s.sinceCkpt++
	return nil
}

// maybeFlushLocked writes the buffer out once it is large enough, and
// rolls the segment when the active file exceeds SegmentBytes.
func (s *Store) maybeFlushLocked() error {
	if len(s.buffered) < 64<<10 {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if len(s.buffered) == 0 {
		return nil
	}
	if _, err := s.active.Write(s.buffered); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.buffered = s.buffered[:0]
	st, err := s.active.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if int(st.Size()) >= s.opts.SegmentBytes {
		return s.rollSegmentLocked()
	}
	return nil
}

// rollSegmentLocked closes the active segment and opens the next one.
func (s *Store) rollSegmentLocked() error {
	if s.active != nil {
		if err := s.active.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	var seq uint64 = 1
	if n := len(s.segments); n > 0 {
		seq = s.segments[n-1].seq + 1
	}
	path := filepath.Join(s.dir, "log", fmt.Sprintf("wal-%08d.seg", seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segments = append(s.segments, &segment{seq: seq, path: path})
	s.active = f
	return nil
}

// Flush writes buffered appends to the OS.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// ShouldCheckpoint reports whether CheckpointEvery blocks were appended
// since the last cut — the application then snapshots its ledger and
// calls WriteCheckpoint.
func (s *Store) ShouldCheckpoint() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.opts.CheckpointEvery > 0 && s.sinceCkpt >= s.opts.CheckpointEvery
}

// WriteCheckpoint durably installs a ledger snapshot and prunes every
// log segment that holds only records at or below the snapshot height.
// The snapshot is written to a temp file and renamed, so a crash leaves
// either the old or the new checkpoint — never a torn one; segments are
// pruned only after the rename.
func (s *Store) WriteCheckpoint(cp *wire.CheckpointState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	raw := wire.EncodeCheckpoint(cp)
	tmp := s.checkpointPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.checkpointPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		// Make the rename durable before any segment is unlinked: a
		// power loss must never persist the prune without the
		// checkpoint. (Without Fsync the store still survives process
		// crashes — the rename is atomic and visible to any reopen —
		// but not power loss; the simulator uses that mode.)
		if err := syncDir(s.dir); err != nil {
			return err
		}
	}
	s.checkpoint = cp
	s.sinceCkpt = 0
	// A checkpoint can introduce chain state the log never saw (the
	// catch-up install path writes the transferred snapshot first).
	for _, b := range cp.Blocks {
		if _, ok := s.byIndex[b.K]; !ok {
			s.byIndex[b.K] = b.Digest
		}
		if b.K > s.lastK || !s.haveBlocks {
			s.lastK = b.K
		}
		s.haveBlocks = true
	}

	// Mark the cut in the log, then prune segments entirely below it.
	marker := make([]byte, 8)
	binary.BigEndian.PutUint64(marker, cp.LastK)
	s.buffered = wire.AppendRecord(s.buffered, wire.RecordCheckpoint, marker)
	if err := s.flushLocked(); err != nil {
		return err
	}
	kept := s.segments[:0]
	for i, seg := range s.segments {
		last := i == len(s.segments)-1
		if !last && seg.records > 0 && seg.lastK <= cp.LastK {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("store: pruning %s: %w", seg.path, err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	s.segments = kept
	s.tail = tailAfterCheckpoint(s.tail, cp.LastK)
	return nil
}

// syncDir fsyncs a directory, making renames and unlinks inside it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// tailAfterCheckpoint filters replay records against a snapshot cut at
// lastK: commits at or below the cut are folded into the snapshot and
// dropped; commits beyond it are kept (a caller may legally append
// block lastK+1 between capturing the snapshot and installing it), and
// supersede records are always kept — a merge racing the cut may or may
// not be folded in, and replaying a folded one is a no-op (the merged
// set travels in the snapshot).
func tailAfterCheckpoint(tail []Record, lastK uint64) []Record {
	var kept []Record
	for _, r := range tail {
		if r.Supersede || r.Block.K > lastK {
			kept = append(kept, r)
		}
	}
	return kept
}

// Recover rebuilds the ledger from the latest checkpoint (or a fresh
// genesis) plus the replayed log tail. genesis seeds a fresh ledger when
// no checkpoint exists — it must reproduce the node's boot-time state
// (genesis allocations and staked deposits).
func (s *Store) Recover(scheme crypto.Scheme, genesis func(*bm.Ledger)) (*bm.Ledger, error) {
	s.mu.Lock()
	cp := s.checkpoint
	tail := make([]Record, len(s.tail))
	copy(tail, s.tail)
	s.mu.Unlock()

	var l *bm.Ledger
	if cp != nil {
		l = bm.RestoreLedger(scheme, cp)
	} else {
		l = bm.NewLedger(scheme)
		if genesis != nil {
			genesis(l)
		}
	}
	for _, r := range tail {
		b := &bm.Block{K: r.Block.K, Digest: r.Block.Digest, Txs: r.Block.Txs}
		if r.Supersede {
			l.MergeBlock(b)
		} else {
			l.CommitBlock(b)
		}
	}
	return l, nil
}

// BlockRecords returns (K, Attempt, Digest) coordinates for every chain
// index the store knows of — checkpointed digests first (attempt 0: the
// snapshot does not retain consensus attempts, which only matter for
// routing in-flight traffic of undecided instances), then the replayed
// tail. Per index the first record wins, matching bm's byIndex map.
func (s *Store) BlockRecords() []wire.BlockRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	byK := make(map[uint64]wire.BlockRecord)
	if s.checkpoint != nil {
		for _, b := range s.checkpoint.Blocks {
			if _, ok := byK[b.K]; !ok {
				byK[b.K] = wire.BlockRecord{K: b.K, Digest: b.Digest}
			}
		}
	}
	for _, r := range s.tail {
		if _, ok := byK[r.Block.K]; !ok {
			byK[r.Block.K] = wire.BlockRecord{K: r.Block.K, Attempt: r.Block.Attempt, Digest: r.Block.Digest}
		}
	}
	ks := make([]uint64, 0, len(byK))
	for k := range byK {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	out := make([]wire.BlockRecord, 0, len(ks))
	for _, k := range ks {
		out = append(out, byK[k])
	}
	return out
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	s.closed = true
	if s.opts.Fsync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.active = nil
	return nil
}
