package store

import (
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// TestCatchupMatrix runs the full standby catch-up path — BuildSyncResp,
// wire round trip, CrossCheck across responders (one lying), InstallSync
// and a post-install Recover — under every wallet-capable payment
// scheme. The store's transfer format is scheme-independent (chain
// digests + CRC-framed records, no per-certificate payload), so
// acceptance must not vary by scheme; the sim scheme is absent by
// design: its registry-backed MACs cannot sign wallet transactions, and
// the public API rejects it for payments (zlb.Config.Scheme).
func TestCatchupMatrix(t *testing.T) {
	for _, kind := range []crypto.SchemeKind{crypto.SchemeECDSA, crypto.SchemeEd25519} {
		t.Run(kind.String(), func(t *testing.T) {
			f := newSchemeFixture(t, t.TempDir(), Options{}, kind)
			for k := uint64(1); k <= 4; k++ {
				f.commit(k, 50)
			}
			if err := f.store.WriteCheckpoint(f.ledger.CheckpointState()); err != nil {
				t.Fatal(err)
			}
			for k := uint64(5); k <= 6; k++ {
				f.commit(k, 50)
			}

			honest, err := f.store.BuildSyncResp(&wire.SyncReq{FromK: 1, WantCheckpoint: true})
			if err != nil {
				t.Fatal(err)
			}
			// A lying responder forks the chain at block 1.
			rec := &wire.BlockRecord{K: 1, Digest: types.Hash([]byte("fork"))}
			payload, err := wire.EncodeBlockRecord(rec)
			if err != nil {
				t.Fatal(err)
			}
			liar := &wire.SyncResp{
				LastK: honest.LastK,
				Log:   wire.AppendRecord(nil, wire.RecordBlock, payload),
			}

			picked, err := CrossCheck([]*wire.SyncResp{honest, liar, honest})
			if err != nil {
				t.Fatal(err)
			}
			// As the transport would deliver it.
			decoded, err := wire.DecodeSyncResp(wire.EncodeSyncResp(picked))
			if err != nil {
				t.Fatal(err)
			}

			client, err := Open(t.TempDir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			ledger, err := InstallSync(client, f.scheme, decoded, f.seed)
			if err != nil {
				t.Fatalf("%v: install rejected: %v", kind, err)
			}
			if got, want := ledger.Table().Balance(f.bob.Address()), f.ledger.Table().Balance(f.bob.Address()); got != want {
				t.Errorf("synced balance %d, want %d", got, want)
			}
			ld, sd := f.ledger.BlockDigests(), ledger.BlockDigests()
			for k, d := range ld {
				if sd[k] != d {
					t.Errorf("synced block %d digest mismatch", k)
				}
			}
			f.checkRecovered(client)
		})
	}
}
