// Catch-up sync: the server side answers a SyncReq straight from the
// store (latest checkpoint + log tail, streamed as the CRC-framed record
// bytes), and the client side verifies a SyncResp and installs it into
// an empty store — the path a newly included standby or a
// wiped-and-restarted node takes instead of replaying from genesis.
//
// Verification is layered, mirroring who can vouch for what:
//
//   - every record frame's CRC is re-checked (transport corruption);
//   - every block record that carries transaction bodies must hash back
//     to its recorded digest (a lying server cannot swap bodies);
//   - the chain digests themselves are authenticated either by
//     cross-checking the responses of several peers (CrossCheck — a
//     majority of the committee must agree on the chain) or, at the
//     consensus layer, by the certificate audit the replica performs on
//     the decisions it adopts (asmr.VerifyDecision on catch-up; the
//     committee's certificates are the root of trust, per §4.1).

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/zeroloss/zlb/internal/bm"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// Errors returned by the catch-up service.
var (
	// ErrNotEmpty rejects installing a sync transfer over existing state.
	ErrNotEmpty = errors.New("store: sync install requires an empty store")
	// ErrBadSync marks a transfer whose records fail verification.
	ErrBadSync = errors.New("store: sync response failed verification")
	// ErrNoQuorum means the queried peers did not agree on a chain.
	ErrNoQuorum = errors.New("store: no majority among sync responses")
)

// BuildSyncResp answers a catch-up request from the store's state: the
// latest checkpoint when asked for one, and the log-tail records the
// requester is missing. The checkpoint is also included — asked for or
// not — whenever FromK reaches into the range the checkpoint folded
// away: the pruned bodies only survive in the snapshot, and a response
// without it would hand the requester a chain with a silent gap.
// Supersede records are always included regardless of FromK — a fork
// merge may have rewritten an index the requester already holds.
func (s *Store) BuildSyncResp(req *wire.SyncReq) (*wire.SyncResp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &wire.SyncResp{LastK: s.lastK}
	if s.checkpoint != nil && (req.WantCheckpoint || req.FromK <= s.checkpoint.LastK) {
		resp.Checkpoint = wire.EncodeCheckpoint(s.checkpoint)
	}
	for _, r := range s.tail {
		if !r.Supersede && r.Block.K < req.FromK {
			continue
		}
		payload, err := wire.EncodeBlockRecord(r.Block)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		kind := wire.RecordBlock
		if r.Supersede {
			kind = wire.RecordSupersede
		}
		resp.Log = wire.AppendRecord(resp.Log, kind, payload)
	}
	return resp, nil
}

// InstallSync verifies a catch-up transfer and installs it into an empty
// store: the checkpoint becomes the store's checkpoint, the log records
// are appended, and the recovered ledger is returned. genesis seeds the
// ledger when the transfer carries no checkpoint. The entire transfer is
// decoded and verified BEFORE the first byte is written, so a bad
// response leaves the store untouched — only an I/O failure mid-install
// can leave partial state behind (callers then discard the directory;
// it was empty). Records carrying transaction bodies are verified
// against their digests; use CrossCheck first to authenticate the chain
// itself against multiple peers.
func InstallSync(s *Store, scheme crypto.Scheme, resp *wire.SyncResp, genesis func(*bm.Ledger)) (*bm.Ledger, error) {
	if _, have := s.LastK(); have {
		return nil, ErrNotEmpty
	}
	// Phase 1: decode and verify everything.
	var cp *wire.CheckpointState
	if len(resp.Checkpoint) > 0 {
		decoded, err := wire.DecodeCheckpoint(resp.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		cp = decoded
	}
	type verified struct {
		supersede bool
		block     *bm.Block
		attempt   uint32
	}
	var records []verified
	minCommitK := uint64(0)
	rest := resp.Log
	for len(rest) > 0 {
		kind, payload, next, err := wire.DecodeRecord(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		if kind != wire.RecordBlock && kind != wire.RecordSupersede {
			return nil, fmt.Errorf("%w: unexpected record kind %d", ErrBadSync, kind)
		}
		rec, err := wire.DecodeBlockRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		if len(rec.Txs) > 0 {
			if recomputed := bm.NewBlock(rec.K, rec.Txs); recomputed.Digest != rec.Digest {
				return nil, fmt.Errorf("%w: block %d body does not hash to its digest", ErrBadSync, rec.K)
			}
		}
		if kind == wire.RecordBlock && (minCommitK == 0 || rec.K < minCommitK) {
			minCommitK = rec.K
		}
		records = append(records, verified{
			supersede: kind == wire.RecordSupersede,
			block:     &bm.Block{K: rec.K, Digest: rec.Digest, Txs: rec.Txs},
			attempt:   rec.Attempt,
		})
		rest = next
	}
	// Gap check: without a checkpoint the log must reach back to the
	// chain's start, or the recovered ledger would silently miss every
	// pre-checkpoint transaction.
	if cp == nil && minCommitK > 1 {
		return nil, fmt.Errorf("%w: log starts at block %d with no checkpoint to bridge the gap", ErrBadSync, minCommitK)
	}

	// Phase 2: install.
	if cp != nil {
		if err := s.WriteCheckpoint(cp); err != nil {
			return nil, err
		}
	}
	for _, v := range records {
		var err error
		if v.supersede {
			err = s.AppendMerge(v.block, v.attempt)
		} else {
			err = s.AppendBlock(v.block, v.attempt)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s.Recover(scheme, genesis)
}

// chainKey folds a response's chain (checkpoint digests, then log
// records, first record per index winning — the same fold bm's byIndex
// applies) into one digest for majority voting.
func chainKey(resp *wire.SyncResp) (types.Digest, error) {
	byK := make(map[uint64]types.Digest)
	var ks []uint64
	note := func(k uint64, d types.Digest) {
		if _, ok := byK[k]; !ok {
			byK[k] = d
			ks = append(ks, k)
		}
	}
	if len(resp.Checkpoint) > 0 {
		cp, err := wire.DecodeCheckpoint(resp.Checkpoint)
		if err != nil {
			return types.Digest{}, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		for _, b := range cp.Blocks {
			note(b.K, b.Digest)
		}
	}
	rest := resp.Log
	for len(rest) > 0 {
		_, payload, next, err := wire.DecodeRecord(rest)
		if err != nil {
			return types.Digest{}, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		rec, err := wire.DecodeBlockRecord(payload)
		if err != nil {
			return types.Digest{}, fmt.Errorf("%w: %v", ErrBadSync, err)
		}
		note(rec.K, rec.Digest)
		rest = next
	}
	// ks is in first-seen order; sort by index for a canonical fold.
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	buf := make([]byte, 0, len(ks)*(8+32))
	var kb [8]byte
	for _, k := range ks {
		binary.BigEndian.PutUint64(kb[:], k)
		buf = append(buf, kb[:]...)
		d := byK[k]
		buf = append(buf, d[:]...)
	}
	return types.Hash(buf), nil
}

// CrossCheck picks the response whose chain a strict majority of the
// responders agree on. Responses that fail to decode are discarded
// (counting toward the denominator: a peer sending garbage is a peer
// disagreeing). Two peers with different checkpoint cuts of the same
// chain vote together — the vote is on chain content, not bytes.
func CrossCheck(resps []*wire.SyncResp) (*wire.SyncResp, error) {
	votes := make(map[types.Digest][]int)
	for i, r := range resps {
		if r == nil {
			continue
		}
		key, err := chainKey(r)
		if err != nil {
			continue
		}
		votes[key] = append(votes[key], i)
	}
	for _, idxs := range votes {
		if 2*len(idxs) > len(resps) {
			// Prefer the longest response of the winning group (most
			// complete checkpoint + tail).
			best := resps[idxs[0]]
			for _, i := range idxs[1:] {
				if resps[i].LastK > best.LastK ||
					(resps[i].LastK == best.LastK && len(resps[i].Checkpoint) > len(best.Checkpoint)) {
					best = resps[i]
				}
			}
			return best, nil
		}
	}
	return nil, ErrNoQuorum
}
