package latency

import (
	"math/rand"
	"time"

	"github.com/zeroloss/zlb/internal/types"
)

// Region identifies one of the five AWS availability zones of the paper's
// geo-distributed deployment (§5.1): California, Oregon, Ohio, Frankfurt
// and Ireland.
type Region int

// The five regions of the paper's Figure 3 deployment.
const (
	California Region = iota + 1
	Oregon
	Ohio
	Frankfurt
	Ireland
)

// Regions lists the five deployment regions in a fixed order.
var Regions = []Region{California, Oregon, Ohio, Frankfurt, Ireland}

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case California:
		return "us-west-1"
	case Oregon:
		return "us-west-2"
	case Ohio:
		return "us-east-2"
	case Frankfurt:
		return "eu-central-1"
	case Ireland:
		return "eu-west-1"
	default:
		return "region(?)"
	}
}

// awsOneWayMillis holds measured one-way delays (RTT/2) in milliseconds
// between the five regions, in the order of Regions. Values follow the
// published inter-region measurements the paper samples from
// ("a distribution that draws from observed AWS latencies").
var awsOneWayMillis = [5][5]int{
	//             CA   OR   OH  FRA  IRE
	/* CA  */ {2, 11, 26, 74, 69},
	/* OR  */ {11, 2, 25, 79, 62},
	/* OH  */ {26, 25, 2, 46, 40},
	/* FRA */ {74, 79, 46, 2, 13},
	/* IRE */ {69, 62, 40, 13, 2},
}

// AWSMatrix models inter-replica delays by assigning each replica to one
// of the five regions (round-robin by ID, as the paper spreads machines
// evenly) and sampling the measured region-to-region delay with ±20%
// jitter.
type AWSMatrix struct {
	assign func(types.ReplicaID) Region
}

var _ Model = (*AWSMatrix)(nil)

// NewAWSMatrix builds the model with round-robin region assignment.
func NewAWSMatrix() *AWSMatrix {
	return &AWSMatrix{assign: func(id types.ReplicaID) Region {
		return Regions[int(uint32(id))%len(Regions)]
	}}
}

// NewAWSMatrixAssigned builds the model with a custom region assignment.
func NewAWSMatrixAssigned(assign func(types.ReplicaID) Region) *AWSMatrix {
	return &AWSMatrix{assign: assign}
}

// RegionOf exposes the region assignment.
func (m *AWSMatrix) RegionOf(id types.ReplicaID) Region { return m.assign(id) }

// Delay implements Model.
func (m *AWSMatrix) Delay(from, to types.ReplicaID, rng *rand.Rand) time.Duration {
	a, b := m.assign(from), m.assign(to)
	base := awsOneWayMillis[int(a)-1][int(b)-1]
	ms := float64(base) * (0.8 + 0.4*rng.Float64())
	return time.Duration(ms * float64(time.Millisecond))
}

// MinDelay implements Bounded: the smallest matrix entry at the maximum
// downward jitter (0.8×), a bound that holds for every region assignment.
func (m *AWSMatrix) MinDelay() time.Duration {
	min := awsOneWayMillis[0][0]
	for _, row := range awsOneWayMillis {
		for _, v := range row {
			if v < min {
				min = v
			}
		}
	}
	return time.Duration(float64(min) * 0.8 * float64(time.Millisecond))
}

// Partitioner assigns replicas to attack partitions. Partition -1 means
// "not partitioned" (the deceitful replicas themselves, which the paper
// lets communicate normally with every partition).
type Partitioner func(types.ReplicaID) int

// PartitionOverlay injects an extra delay on top of a base model for
// messages crossing between two distinct partitions of honest replicas,
// reproducing the coalition-attack network conditions of §5.2: deceitful
// replicas talk to everyone at base speed, while honest partitions only
// hear each other after the injected delay.
type PartitionOverlay struct {
	Base        Model
	Extra       Model
	PartitionOf Partitioner
}

var _ Model = (*PartitionOverlay)(nil)

// Delay implements Model.
func (p *PartitionOverlay) Delay(from, to types.ReplicaID, rng *rand.Rand) time.Duration {
	d := p.Base.Delay(from, to, rng)
	pa, pb := p.PartitionOf(from), p.PartitionOf(to)
	if pa >= 0 && pb >= 0 && pa != pb {
		d += p.Extra.Delay(from, to, rng)
	}
	return d
}

// MinDelay implements Bounded: the overlay only ever adds delay on top of
// the base model, so the base's bound holds for every link.
func (p *PartitionOverlay) MinDelay() time.Duration { return MinDelayOf(p.Base) }
