// Package latency provides the message-delay models used by the
// discrete-event simulator: the uniform and Gamma distributions and the
// AWS inter-region latency matrix the paper injects between partitions of
// honest replicas (§5.2), plus a partition overlay that reproduces the
// coalition-attack network conditions.
package latency

import (
	"math"
	"math/rand"
	"time"

	"github.com/zeroloss/zlb/internal/types"
)

// Model produces the one-way network delay for a message from one replica
// to another. Implementations must be safe for sequential use from the
// simulator loop; they receive the simulator's seeded RNG for
// reproducibility.
type Model interface {
	Delay(from, to types.ReplicaID, rng *rand.Rand) time.Duration
}

// ModelFunc adapts a function to the Model interface.
type ModelFunc func(from, to types.ReplicaID, rng *rand.Rand) time.Duration

// Delay implements Model.
func (f ModelFunc) Delay(from, to types.ReplicaID, rng *rand.Rand) time.Duration {
	return f(from, to, rng)
}

// Bounded is implemented by models that can lower-bound every delay they
// will ever produce. The bound is what the parallel simulator derives its
// conservative lookahead window from (internal/simnet): a positive
// MinDelay guarantees no message sent at virtual time t arrives before
// t+MinDelay, so events less than MinDelay apart at different nodes are
// causally independent. The bound must hold for every (from, to) pair and
// every random draw — a model returning a delay below its stated MinDelay
// breaks the simulator's bit-identity guarantee (and panics the run).
// Models that cannot bound their delays away from zero (Gamma, arbitrary
// ModelFunc) simply do not implement Bounded and run sequentially.
type Bounded interface {
	MinDelay() time.Duration
}

// MinDelayOf returns the model's guaranteed delay lower bound, or 0 when
// the model does not implement Bounded (no usable lookahead).
func MinDelayOf(m Model) time.Duration {
	if b, ok := m.(Bounded); ok {
		if d := b.MinDelay(); d > 0 {
			return d
		}
	}
	return 0
}

// fixedModel is the constant-delay model.
type fixedModel struct{ d time.Duration }

func (m fixedModel) Delay(_, _ types.ReplicaID, _ *rand.Rand) time.Duration { return m.d }
func (m fixedModel) MinDelay() time.Duration                                { return m.d }

// Fixed returns a constant-delay model.
func Fixed(d time.Duration) Model { return fixedModel{d: d} }

// uniformModel draws uniformly from [min, max].
type uniformModel struct{ min, span time.Duration }

func (m uniformModel) Delay(_, _ types.ReplicaID, rng *rand.Rand) time.Duration {
	if m.span == 0 {
		return m.min
	}
	return m.min + time.Duration(rng.Int63n(int64(m.span)+1))
}

func (m uniformModel) MinDelay() time.Duration { return m.min }

// Uniform returns delays drawn uniformly from [min, max]. The paper's
// partition-delay experiments use uniform delays with means of 200, 500
// and 1000 ms; UniformMean builds those directly.
func Uniform(min, max time.Duration) Model {
	if max < min {
		min, max = max, min
	}
	return uniformModel{min: min, span: max - min}
}

// UniformMean returns a uniform model on [mean/2, 3·mean/2], i.e. with the
// requested mean.
func UniformMean(mean time.Duration) Model { return Uniform(mean/2, mean+mean/2) }

// Gamma returns delays drawn from a Gamma distribution with the given
// shape (k) and scale (θ), matching the Internet-delay measurements the
// paper cites (Mukherjee '92; Crovella & Carter '95). Mean = k·θ.
func Gamma(shape float64, scale time.Duration) Model {
	return ModelFunc(func(_, _ types.ReplicaID, rng *rand.Rand) time.Duration {
		x := gammaSample(rng, shape)
		return time.Duration(x * float64(scale))
	})
}

// GammaInternet returns the Gamma model with the parameters used for the
// paper's "gamma" series: shape 2.5, mean ≈ 50 ms one-way, i.e. a
// long-tailed wide-area Internet path.
func GammaInternet() Model { return Gamma(2.5, 20*time.Millisecond) }

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang, with the boost
// for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9.0*d)
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1.0-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1.0-v+math.Log(v)) {
			return d * v
		}
	}
}

// jitteredModel wraps a base model with multiplicative jitter.
type jitteredModel struct {
	base     Model
	fraction float64
}

func (m jitteredModel) Delay(from, to types.ReplicaID, rng *rand.Rand) time.Duration {
	d := m.base.Delay(from, to, rng)
	j := 1 + m.fraction*(2*rng.Float64()-1)
	return time.Duration(float64(d) * j)
}

// MinDelay implements Bounded: the base bound shrunk by the worst-case
// downward jitter (0 when the jitter can reach or cross zero, or when the
// base is unbounded).
func (m jitteredModel) MinDelay() time.Duration {
	if m.fraction >= 1 {
		return 0
	}
	return time.Duration(float64(MinDelayOf(m.base)) * (1 - m.fraction))
}

// Jittered wraps a model adding ±fraction multiplicative jitter, so fixed
// matrices still produce distinct arrival orders run to run.
func Jittered(base Model, fraction float64) Model {
	return jitteredModel{base: base, fraction: fraction}
}
