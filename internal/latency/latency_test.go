package latency

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/types"
)

func sampleMean(m Model, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var total time.Duration
	for i := 0; i < n; i++ {
		total += m.Delay(1, 2, rng)
	}
	return total / time.Duration(n)
}

func TestFixed(t *testing.T) {
	m := Fixed(25 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if got := m.Delay(1, 2, rng); got != 25*time.Millisecond {
			t.Fatalf("fixed delay = %v", got)
		}
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	m := Uniform(10*time.Millisecond, 30*time.Millisecond)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		d := m.Delay(1, 2, rng)
		if d < 10*time.Millisecond || d > 30*time.Millisecond {
			t.Fatalf("uniform out of bounds: %v", d)
		}
	}
	mean := sampleMean(m, 20000, 3)
	if mean < 18*time.Millisecond || mean > 22*time.Millisecond {
		t.Fatalf("uniform mean %v, want ≈20ms", mean)
	}
	// Swapped bounds normalize.
	swapped := Uniform(30*time.Millisecond, 10*time.Millisecond)
	if d := swapped.Delay(1, 2, rng); d < 10*time.Millisecond || d > 30*time.Millisecond {
		t.Fatalf("swapped-bounds uniform out of range: %v", d)
	}
}

func TestUniformMean(t *testing.T) {
	for _, mean := range []time.Duration{200 * time.Millisecond, time.Second} {
		got := sampleMean(UniformMean(mean), 20000, 4)
		lo := time.Duration(float64(mean) * 0.95)
		hi := time.Duration(float64(mean) * 1.05)
		if got < lo || got > hi {
			t.Fatalf("UniformMean(%v) sample mean %v", mean, got)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(k, θ): mean kθ, variance kθ².
	shape := 2.5
	scale := 20 * time.Millisecond
	m := Gamma(shape, scale)
	rng := rand.New(rand.NewSource(5))
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := float64(m.Delay(1, 2, rng)) / float64(time.Millisecond)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	wantMean := shape * 20
	wantVar := shape * 20 * 20
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Fatalf("gamma mean %.2f, want ≈%.2f", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Fatalf("gamma variance %.2f, want ≈%.2f", variance, wantVar)
	}
}

func TestGammaSmallShape(t *testing.T) {
	m := Gamma(0.5, 10*time.Millisecond)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		if d := m.Delay(1, 2, rng); d < 0 {
			t.Fatalf("negative gamma sample: %v", d)
		}
	}
	mean := sampleMean(m, 30000, 7)
	if mean < 4*time.Millisecond || mean > 6*time.Millisecond {
		t.Fatalf("gamma(0.5, 10ms) mean %v, want ≈5ms", mean)
	}
}

func TestAWSMatrixProperties(t *testing.T) {
	m := NewAWSMatrix()
	rng := rand.New(rand.NewSource(8))
	// Same region (ids 1 and 6 are both region index 1): short delay.
	intra := sampleMean(ModelFunc(func(_, _ types.ReplicaID, r *rand.Rand) time.Duration {
		return m.Delay(1, 6, r)
	}), 1000, 9)
	// Cross-continental (California idx vs Frankfurt): id 5 is region
	// (5 % 5 = 0) California, id 4 is (4 % 5) Ireland... pick via RegionOf.
	var ca, fra types.ReplicaID
	for id := types.ReplicaID(1); id <= 10; id++ {
		switch m.RegionOf(id) {
		case California:
			ca = id
		case Frankfurt:
			fra = id
		}
	}
	cross := sampleMean(ModelFunc(func(_, _ types.ReplicaID, r *rand.Rand) time.Duration {
		return m.Delay(ca, fra, r)
	}), 1000, 10)
	if intra >= cross {
		t.Fatalf("intra-region %v not faster than cross-continental %v", intra, cross)
	}
	if cross < 50*time.Millisecond || cross > 110*time.Millisecond {
		t.Fatalf("CA↔FRA delay %v outside plausible range", cross)
	}
	_ = rng
}

func TestAWSMatrixSymmetry(t *testing.T) {
	m := NewAWSMatrix()
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if awsOneWayMillis[a][b] != awsOneWayMillis[b][a] {
				t.Fatalf("asymmetric base latency %d↔%d", a, b)
			}
		}
	}
	_ = m
}

func TestPartitionOverlay(t *testing.T) {
	partitions := map[types.ReplicaID]int{1: 0, 2: 0, 3: 1, 4: -1}
	overlay := &PartitionOverlay{
		Base:        Fixed(10 * time.Millisecond),
		Extra:       Fixed(1 * time.Second),
		PartitionOf: func(id types.ReplicaID) int { return partitions[id] },
	}
	rng := rand.New(rand.NewSource(11))
	// Same partition: base only.
	if d := overlay.Delay(1, 2, rng); d != 10*time.Millisecond {
		t.Fatalf("intra-partition delay %v", d)
	}
	// Cross partition: base + extra.
	if d := overlay.Delay(1, 3, rng); d != 1010*time.Millisecond {
		t.Fatalf("cross-partition delay %v", d)
	}
	// Deceitful (partition −1) reaches everyone at base speed — the
	// paper's attack network (§5.2).
	if d := overlay.Delay(4, 1, rng); d != 10*time.Millisecond {
		t.Fatalf("deceitful→honest delay %v", d)
	}
	if d := overlay.Delay(3, 4, rng); d != 10*time.Millisecond {
		t.Fatalf("honest→deceitful delay %v", d)
	}
}

func TestJittered(t *testing.T) {
	m := Jittered(Fixed(100*time.Millisecond), 0.2)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 1000; i++ {
		d := m.Delay(1, 2, rng)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±20%%", d)
		}
	}
}

func TestRegionString(t *testing.T) {
	for _, r := range Regions {
		if r.String() == "region(?)" {
			t.Fatalf("region %d unnamed", r)
		}
	}
}

// TestMinDelayBounds pins every Bounded implementation's lower bound and
// verifies, by sampling, that no draw ever lands below it — the
// invariant the parallel simulator's lookahead window is built on.
func TestMinDelayBounds(t *testing.T) {
	overlay := &PartitionOverlay{
		Base:        Fixed(10 * time.Millisecond),
		Extra:       UniformMean(500 * time.Millisecond),
		PartitionOf: func(id types.ReplicaID) int { return int(id) % 2 },
	}
	cases := []struct {
		name  string
		model Model
		want  time.Duration
	}{
		{"fixed", Fixed(3 * time.Millisecond), 3 * time.Millisecond},
		{"uniform", Uniform(2*time.Millisecond, 9*time.Millisecond), 2 * time.Millisecond},
		{"uniform-mean", UniformMean(200 * time.Millisecond), 100 * time.Millisecond},
		{"aws", NewAWSMatrix(), 1600 * time.Microsecond},
		{"jittered-aws", Jittered(NewAWSMatrix(), 0.2), 1280 * time.Microsecond},
		{"partition-overlay", overlay, 10 * time.Millisecond},
		{"gamma-unbounded", GammaInternet(), 0},
		{"modelfunc-unbounded", ModelFunc(func(_, _ types.ReplicaID, _ *rand.Rand) time.Duration { return time.Second }), 0},
		{"jitter-over-1", Jittered(Fixed(time.Millisecond), 1.5), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := MinDelayOf(c.model); got != c.want {
				t.Fatalf("MinDelayOf = %v, want %v", got, c.want)
			}
			if c.want == 0 {
				return
			}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 5000; i++ {
				from := types.ReplicaID(1 + i%7)
				to := types.ReplicaID(1 + (i/7)%7)
				if d := c.model.Delay(from, to, rng); d < c.want {
					t.Fatalf("draw %v below declared MinDelay %v (%v->%v)", d, c.want, from, to)
				}
			}
		})
	}
}
