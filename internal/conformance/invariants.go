package conformance

import (
	"fmt"

	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/types"
)

// Violation is one failed invariant with enough detail to reproduce.
type Violation struct {
	// Invariant is the paper label: "a", "b", "c" or "d".
	Invariant string
	Detail    string
}

// CheckInvariants asserts the paper's four accountability invariants over
// a finished run. corrupt is the ground-truth set of replicas the
// campaign corrupted (wire-level twins and equivocators as well as
// coalition members); every accusation outside it is a violation.
//
//	(a) Agreement up to common prefix: with no observed disagreement,
//	    every pair of honest replicas must agree digest-for-digest on
//	    every instance both committed; after a forced disagreement the
//	    honest committee must have converged (matching final committees
//	    with a sub-⌈n/3⌉ deceitful fraction — the merge happened).
//	(b) Accountability: any observed disagreement must leave every honest
//	    replica with PoFs on at least ⌈n/3⌉ distinct replicas.
//	(c) Exclusion is permanent: a replica excluded by a completed
//	    membership change never reappears in that replica's committee.
//	(d) No false accusation: no honest replica is ever proven deceitful,
//	    at any honest replica, even transiently (the proven set is
//	    monotone).
func CheckInvariants(c *harness.Cluster, corrupt map[types.ReplicaID]bool) []Violation {
	var out []Violation
	honest := c.HonestMembers()
	if len(honest) == 0 {
		return []Violation{{Invariant: "a", Detail: "no honest replicas to check"}}
	}
	n := len(c.Members)

	// (a) agreement up to common prefix / convergence after merge.
	if c.Disagreements() == 0 {
		ref := honest[0]
		refChain := c.Replicas[ref].ChainDigests()
		for _, id := range honest[1:] {
			for k, d := range c.Replicas[id].ChainDigests() {
				if rd, ok := refChain[k]; ok && rd != d {
					out = append(out, Violation{
						Invariant: "a",
						Detail: fmt.Sprintf("replicas %v and %v committed different digests for instance %d with no disagreement recorded",
							ref, id, k),
					})
				}
			}
		}
	} else if !c.ConvergedAgreement() {
		out = append(out, Violation{
			Invariant: "a",
			Detail:    fmt.Sprintf("%d disagreements but honest replicas did not converge", c.Disagreements()),
		})
	}

	// (b) disagreement implies ≥ ⌈n/3⌉ provable culprits everywhere.
	if c.Disagreements() > 0 {
		fd := types.FaultThreshold(n)
		for _, id := range honest {
			if got := c.Replicas[id].Log().ProvenCount(); got < fd {
				out = append(out, Violation{
					Invariant: "b",
					Detail: fmt.Sprintf("replica %v proved only %d culprits, need ≥ %d after a disagreement",
						id, got, fd),
				})
			}
		}
	}

	// (c) excluded culprits never rejoin.
	for _, id := range honest {
		members := c.Replicas[id].View().Members()
		current := make(map[types.ReplicaID]bool, len(members))
		for _, m := range members {
			current[m] = true
		}
		for _, change := range c.ChangeResults[id] {
			for _, ex := range change.Excluded {
				if current[ex] {
					out = append(out, Violation{
						Invariant: "c",
						Detail:    fmt.Sprintf("replica %v excluded %v but it is back in the committee", id, ex),
					})
				}
			}
		}
	}

	// (d) no honest replica is ever accused.
	for _, id := range honest {
		for _, culprit := range c.Replicas[id].Log().ProvenCulprits() {
			if !corrupt[culprit] {
				out = append(out, Violation{
					Invariant: "d",
					Detail:    fmt.Sprintf("replica %v holds a PoF against honest replica %v", id, culprit),
				})
			}
		}
	}
	return out
}
