package conformance

import (
	"fmt"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Rule is a campaign's per-delivery mutator, with simnet.DeliverRule
// semantics: return msg unchanged to pass it through, a different message
// to rewrite it in flight, or nil to swallow it. Rules run on the
// simulator's event loop, so they must be deterministic and must build
// fresh messages rather than mutating msg in place — a multicast shares
// one message value across all its recipients.
type Rule func(from, to types.ReplicaID, msg simnet.Message) simnet.Message

// Injector owns a cluster's delivery-interception surface. It installs
// itself as the network's DeliverRule and layers three guarantees on top:
//
//   - messages the injector fabricated (Inject) are never re-mutated, so
//     rules cannot feed back on their own output;
//   - mutations are scoped to the handler incarnation the campaign armed
//     against: once a node's handler is replaced (simnet.ReplaceHandler),
//     deliveries to it pass through untouched — a restarted replica must
//     not receive messages mutated for its previous epoch;
//   - interventions are counted (Mutated/Injected/Swallowed) so goldens
//     pin the exact adversarial pressure a seed produces.
type Injector struct {
	c    *harness.Cluster
	rule Rule
	// injected marks fabricated messages by identity. Entries are kept for
	// the whole run: the same message may be injected to many recipients.
	injected map[simnet.Message]bool
	// epochs snapshots each node's handler epoch at Arm time.
	epochs map[types.ReplicaID]uint32
	// Mutated counts in-flight rewrites, Injected fabricated deliveries,
	// Swallowed rule-dropped messages.
	Mutated   int
	Injected  int
	Swallowed int
}

// Arm installs an Injector as the cluster's delivery rule. Installing a
// DeliverRule forces the simulator into sequential mode, so every rule
// invocation and injection is deterministic under the cluster seed.
func Arm(c *harness.Cluster) *Injector {
	inj := &Injector{
		c:        c,
		injected: make(map[simnet.Message]bool),
		epochs:   make(map[types.ReplicaID]uint32),
	}
	for _, id := range c.Net.NodeIDs() {
		inj.epochs[id] = c.Net.Epoch(id)
	}
	c.Net.DeliverRule = inj.deliver
	return inj
}

// SetRule installs the campaign's mutator; a nil rule passes everything.
func (inj *Injector) SetRule(r Rule) { inj.rule = r }

func (inj *Injector) deliver(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
	if inj.injected[msg] {
		return msg
	}
	if inj.rule == nil || inj.c.Net.Epoch(to) != inj.epochs[to] {
		return msg
	}
	out := inj.rule(from, to, msg)
	switch {
	case out == nil:
		inj.Swallowed++
	case out != msg:
		inj.Mutated++
	}
	return out
}

// Inject fabricates a delivery: msg arrives at to, attributed to from,
// after the given virtual delay. The message is exempted from further
// mutation. Safe to call from inside a Rule — that is the main use:
// pass the original through and inject a conflicting sibling.
func (inj *Injector) Inject(from, to types.ReplicaID, msg simnet.Message, after time.Duration) {
	inj.injected[msg] = true
	inj.Injected++
	inj.c.Net.Inject(from, to, msg, after)
}

// Sign signs a statement with a replica's real key — the harness holds
// every signer, committee and pool, which is exactly the capability a
// twin (a second process holding a replica's key) has.
func (inj *Injector) Sign(id types.ReplicaID, stmt accountability.Statement) (accountability.Signed, error) {
	s, ok := inj.c.Signers[id]
	if !ok {
		return accountability.Signed{}, fmt.Errorf("conformance: no signer for %v", id)
	}
	return accountability.SignStatement(s, stmt)
}
