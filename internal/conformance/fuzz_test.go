package conformance

import (
	"encoding/binary"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/wire"
)

// FuzzCampaignSeeds explores the registered campaigns across seeds:
// data[0] selects the campaign, data[1:9] (little-endian, zero-padded) is
// the cluster seed. Every execution must end with all four invariants
// intact — the fuzzer is hunting for a seed whose interleaving breaks
// agreement, under-proves a disagreement, resurrects an excluded replica
// or accuses an honest one. The committed corpus pins one entry per
// campaign at seed 42, the seed the scenario goldens were captured from.
func FuzzCampaignSeeds(f *testing.F) {
	for i := range Names() {
		f.Add([]byte{byte(i), 42})
	}
	names := Names()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		name := names[int(data[0])%len(names)]
		var sb [8]byte
		copy(sb[:], data[1:])
		seed := int64(binary.LittleEndian.Uint64(sb[:]) & 0x7fffffff)
		res, err := Run(name, 9, seed)
		if err != nil {
			t.Fatalf("%s seed=%d: %v", name, seed, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s seed=%d: invariant violations:\n%s", name, seed, res.Format())
		}
	})
}

// FuzzMutationSchedule drives a generic byte-programmed injector over an
// attack-free cluster: each delivery consumes one schedule byte choosing
// pass / duplicate / withhold-and-redeliver / future-EST shadow / forged
// AUX shadow. Whatever program the fuzzer writes, the run must stay in
// total agreement with zero accusations — none of the operations are
// attributable evidence.
func FuzzMutationSchedule(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 0, 1, 2, 3})
	f.Add([]byte{2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			t.Skip()
		}
		c, err := harness.New(harness.Options{
			N:            4,
			Accountable:  true,
			Recover:      true,
			Cost:         simnet.DefaultCostModel(),
			Seed:         11,
			BatchTxs:     50,
			BatchBytes:   400 * 50,
			MaxInstances: 2,
			PoolSize:     1,
			CoordTimeout: fastRounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		inj := Arm(c)
		step := 0
		inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
			op := data[step%len(data)]
			step++
			switch op % 5 {
			case 1:
				inj.Inject(from, to, msg, 20*time.Millisecond)
			case 2:
				inj.Inject(from, to, msg, 100*time.Millisecond)
				return nil
			case 3:
				if m, ok := msg.(*bincon.Est); ok {
					inj.Inject(from, to, ShiftEstRound(m, 1), time.Millisecond)
				}
			case 4:
				if m, ok := msg.(*bincon.Aux); ok {
					inj.Inject(from, to, ForgeAux(m), time.Millisecond)
				}
			}
			return msg
		})
		c.Start()
		c.RunUntilQuiet(10 * time.Minute)
		if vs := CheckInvariants(c, nil); len(vs) > 0 {
			t.Fatalf("schedule %v: %v", data, vs)
		}
		for _, id := range c.HonestMembers() {
			if got := c.Replicas[id].Log().ProvenCount(); got != 0 {
				t.Fatalf("schedule %v: replica %v proved %d culprits from unattributable noise", data, id, got)
			}
		}
	})
}

// FuzzPoFGossipDecode closes the loop with the wire layer: arbitrary
// bytes run through the PoF-set decoder, and any proof that parses must
// still fail signature verification against the local key universe —
// random bytes must never yield an accusation the gossip handler would
// accept. The seed corpus includes a structurally valid PoF signed in a
// *different* key universe (SchemeSim verification is registry-scoped),
// so the fuzzer mutates from well-formed proofs, not just noise.
func FuzzPoFGossipDecode(f *testing.F) {
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 1)
	if err != nil {
		f.Fatal(err)
	}
	foreign, _, err := crypto.GenerateCluster(crypto.SchemeSim, 4, 99)
	if err != nil {
		f.Fatal(err)
	}
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindAux,
		Instance: 1, Slot: 2, Round: 0,
		Value: accountability.BoolDigest(false),
	}
	a, err := accountability.SignStatement(foreign[0], stmt)
	if err != nil {
		f.Fatal(err)
	}
	stmt.Value = accountability.BoolDigest(true)
	b, err := accountability.SignStatement(foreign[0], stmt)
	if err != nil {
		f.Fatal(err)
	}
	pof, err := accountability.NewPoF(a, b)
	if err != nil {
		f.Fatal(err)
	}
	buf, err := wire.EncodePoFs([]accountability.PoF{pof})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pofs, err := wire.DecodePoFs(data)
		if err != nil {
			return
		}
		for _, p := range pofs {
			if p.Verify(signers[0]) {
				t.Fatalf("fuzzed bytes produced a verifying PoF against %v", p.Culprit)
			}
		}
	})
}
