package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/types"
)

var updateGoldens = flag.Bool("update", false, "rewrite the conformance golden files under testdata/")

// goldenDir is the repo-level conformance fixture directory, next to the
// scenario goldens the corpora are seeded from.
func goldenDir() string {
	return filepath.Join("..", "..", "testdata", "conformance")
}

// TestCampaignGoldens is the deterministic driver the acceptance criteria
// pin: every registered campaign runs twice at n=9, seed 42 — the two
// runs must be bit-identical, all four invariants must hold, and the
// formatted result must match the golden under testdata/conformance/.
// Regenerate after an intended change with
// `go test ./internal/conformance -run TestCampaignGoldens -update`.
func TestCampaignGoldens(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func() string {
				res, err := Run(name, 9, 42)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("invariant violations:\n%s", res.Format())
				}
				return res.Format()
			}
			first, second := run(), run()
			if first != second {
				t.Fatalf("two fixed-seed runs differ:\n--- run 1\n%s--- run 2\n%s", first, second)
			}
			goldenPath := filepath.Join(goldenDir(), name+".golden")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(first), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if first != string(want) {
				t.Errorf("result diverged from golden:\n--- got\n%s--- want\n%s", first, want)
			}
		})
	}
}

// TestAttributableCampaignsProveCulprits pins the acceptance criterion
// directly: the equivocation and twins campaigns must prove at least
// ⌈n/3⌉ culprits, accuse nobody honest, and permanently exclude every
// culprit they prove.
func TestAttributableCampaignsProveCulprits(t *testing.T) {
	const n, seed = 9, 42
	fd := types.FaultThreshold(n)
	for _, name := range []string{"equivocation", "twins"} {
		res, err := Run(name, n, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s: invariant violations:\n%s", name, res.Format())
		}
		if len(res.Culprits) < fd {
			t.Errorf("%s: proved %d culprits, want ≥ %d", name, len(res.Culprits), fd)
		}
		corrupt := make(map[types.ReplicaID]bool)
		for _, id := range firstIDs(fd) {
			corrupt[id] = true
		}
		for _, id := range res.Culprits {
			if !corrupt[id] {
				t.Errorf("%s: honest replica %v accused", name, id)
			}
		}
		if len(res.Excluded) < fd {
			t.Errorf("%s: excluded %d replicas, want ≥ %d", name, len(res.Excluded), fd)
		}
	}
}

// TestUnattributableCampaignsAccuseNobody pins the flip side: campaigns
// whose interference is not attributable evidence — temporal displacement,
// forged signatures, mutated certificates, replay/reorder — must end with
// an empty proven set at every honest replica.
func TestUnattributableCampaignsAccuseNobody(t *testing.T) {
	for _, name := range []string{"stale-epoch", "cert-mutation", "replay-reorder"} {
		res, err := Run(name, 9, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s: invariant violations:\n%s", name, res.Format())
		}
		if len(res.Culprits) != 0 {
			t.Errorf("%s: proved culprits %v from unattributable interference", name, res.Culprits)
		}
		if res.Disagreements != 0 {
			t.Errorf("%s: %d disagreements from unattributable interference", name, res.Disagreements)
		}
	}
}

// TestMergeCampaignExercisesAccountability pins that the merge campaign
// actually forces the disagreement path (invariant (b) is vacuous without
// one) and recovers: disagreements observed, ≥ ⌈n/3⌉ culprits proven,
// coalition excluded, honest committee converged.
func TestMergeCampaignExercisesAccountability(t *testing.T) {
	res, err := Run("merge-during-catchup", 9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("invariant violations:\n%s", res.Format())
	}
	if res.Disagreements == 0 {
		t.Fatal("merge campaign produced no disagreement — invariant (b) never exercised")
	}
	if fd := types.FaultThreshold(9); len(res.Culprits) < fd {
		t.Errorf("proved %d culprits, want ≥ %d", len(res.Culprits), fd)
	}
	if !res.Converged {
		t.Error("honest committee did not converge after the merge")
	}
}

// TestCheckInvariantsFlagsHonestAccusation verifies the checker itself:
// a PoF planted against a replica outside the corrupt set must surface as
// a violation of invariant (d), and the same PoF inside the corrupt set
// must not.
func TestCheckInvariantsFlagsHonestAccusation(t *testing.T) {
	c, err := newCluster(4, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.Members[0]
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindAux,
		Instance: 1, Slot: 2, Round: 0,
		Value: accountability.BoolDigest(false),
	}
	a, err := accountability.SignStatement(c.Signers[victim], stmt)
	if err != nil {
		t.Fatal(err)
	}
	stmt.Value = accountability.BoolDigest(true)
	b, err := accountability.SignStatement(c.Signers[victim], stmt)
	if err != nil {
		t.Fatal(err)
	}
	pof, err := accountability.NewPoF(a, b)
	if err != nil {
		t.Fatal(err)
	}
	holder := c.Members[1]
	if !c.Replicas[holder].Log().AddPoF(pof) {
		t.Fatal("planted PoF not accepted")
	}

	violations := CheckInvariants(c, nil)
	foundD := false
	for _, v := range violations {
		if v.Invariant == "d" {
			foundD = true
		}
	}
	if !foundD {
		t.Errorf("accusation against %v outside the corrupt set not flagged: %v", victim, violations)
	}
	if vs := CheckInvariants(c, map[types.ReplicaID]bool{victim: true}); len(vs) != 0 {
		t.Errorf("accusation inside the corrupt set flagged: %v", vs)
	}
}
