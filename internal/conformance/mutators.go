package conformance

import (
	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/types"
)

// Mutators build adversarial protocol messages that are valid by
// construction: field layouts stay legal, and where a signature is meant
// to verify it is produced with the signer's real key. Byte-level
// corruption is the wire fuzzers' job; these mutators target the layer
// above — what a Byzantine replica that follows the message grammar but
// not the protocol can actually emit.

// FlipAux returns a fresh AUX vote for the opposite binary value,
// re-signed with the original signer's key: delivered next to the
// original, it is exactly the binary-consensus equivocation the
// accountability log turns into a PoF.
func (inj *Injector) FlipAux(a *bincon.Aux) (*bincon.Aux, error) {
	stmt := a.Stmt.Stmt
	stmt.Value = accountability.BoolDigest(!accountability.DigestBool(stmt.Value))
	signed, err := inj.Sign(a.Stmt.Signer, stmt)
	if err != nil {
		return nil, err
	}
	return &bincon.Aux{Stmt: signed}, nil
}

// TwinEcho returns an ECHO for a conflicting digest in the same
// broadcast slot, signed with the original signer's key — what the
// signer's twin (a second process holding the same key) would emit.
func (inj *Injector) TwinEcho(e *rbc.Echo) (*rbc.Echo, error) {
	stmt := e.Stmt.Stmt
	stmt.Value[0] ^= 0xa5 // deterministic conflicting digest
	signed, err := inj.Sign(e.Stmt.Signer, stmt)
	if err != nil {
		return nil, err
	}
	return &rbc.Echo{Stmt: signed}, nil
}

// ShiftEstRound returns a copy of an (unsigned) EST vote moved dr rounds
// forward. EST is deliberately not an equivocation slot, so these stale
// and future votes must be absorbed without ever producing evidence.
func ShiftEstRound(e *bincon.Est, dr uint32) *bincon.Est {
	cp := *e
	cp.Round += types.Round(dr)
	return &cp
}

// ForgeAux returns an AUX vote whose value was flipped without re-signing:
// the signature no longer covers the statement, so the receiver must
// reject it outright — and, critically, must not accuse the nominal
// signer, who never produced it.
func ForgeAux(a *bincon.Aux) *bincon.Aux {
	cp := *a
	cp.Stmt.Stmt.Value = accountability.BoolDigest(!accountability.DigestBool(cp.Stmt.Stmt.Value))
	return &cp
}

// TruncateCert returns a DECIDE whose certificate lost its last
// signature: every remaining signature is genuine, but the quorum check
// must fail.
func TruncateCert(d *bincon.Decide) *bincon.Decide {
	cp := *d
	cp.Cert = &accountability.Certificate{Stmt: d.Cert.Stmt, Sigs: d.Cert.Sigs[:len(d.Cert.Sigs)-1]}
	return &cp
}

// DuplicateSignerCert returns a DECIDE whose certificate repeats its
// first signature in place of the last: every signature verifies, the
// length still looks like a quorum, but the signers are no longer
// distinct.
func DuplicateSignerCert(d *bincon.Decide) *bincon.Decide {
	sigs := append([]accountability.Signed(nil), d.Cert.Sigs...)
	sigs[len(sigs)-1] = sigs[0]
	cp := *d
	cp.Cert = &accountability.Certificate{Stmt: d.Cert.Stmt, Sigs: sigs}
	return &cp
}

// FlipDecideValue returns a DECIDE claiming the opposite value while
// carrying the original (genuine) certificate: the certificate statement
// no longer matches the claimed decision, so receivers must refuse it.
func FlipDecideValue(d *bincon.Decide) *bincon.Decide {
	cp := *d
	cp.Value = !cp.Value
	return &cp
}
