// Package conformance is the structure-aware Byzantine fuzzing harness:
// it drives full asmr/sbc/bincon/rbc clusters with mutated, replayed and
// fabricated protocol messages and checks the paper's accountability
// invariants after every run.
//
// Unlike the wire fuzzers (which prove decoders never panic on arbitrary
// bytes) and the adversary package (which scripts the paper's two named
// coalition attacks), conformance explores the protocol space *between*
// those layers: every mutation is valid-by-construction — a re-signed
// AUX vote for the opposite value, a twin ECHO signed with a stolen key,
// a certificate with one signature removed — so the replicas' semantic
// defences (signature checks, certificate quorums, equivocation
// cross-checking) are what is under test, not the codec.
//
// The injection surface is simnet.Network.DeliverRule: an Injector owns
// the rule, rewrites or swallows messages at delivery time, and fabricates
// additional deliveries through simnet.Inject. Mutations therefore compose
// with the existing fault stack (partitions, delays, crash/restart) and
// stay fully deterministic under a fixed seed.
//
// After every campaign the four paper invariants are asserted
// (see CheckInvariants):
//
//	(a) honest replicas agree up to the common prefix, or have provably
//	    merged when the run forced a disagreement;
//	(b) every observed disagreement yields ≥ ⌈n/3⌉ provable culprits in
//	    the accountability log of every honest replica;
//	(c) replicas excluded by a completed membership change never rejoin
//	    the committee;
//	(d) no honest replica is ever accused.
package conformance

import (
	"fmt"
	"strings"
	"time"

	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/latency"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// Campaign is one registered adversarial strategy: a named way of
// corrupting the message stream, plus the ground truth of which replicas
// it corrupts (the set the invariant checker may see accused).
type Campaign struct {
	Name        string
	Description string
	// Run executes the campaign at committee size n under a fixed seed
	// and returns the invariant-checked result.
	Run func(n int, seed int64) (Result, error)
}

// Result is one campaign run's deterministic outcome: everything the
// goldens pin plus the invariant verdicts.
type Result struct {
	Campaign      string
	N             int
	Seed          int64
	Committed     int
	Disagreements int
	Converged     bool
	// Culprits is the first honest replica's monotone ever-proven set.
	Culprits []types.ReplicaID
	// Excluded is the union of replicas excluded by completed membership
	// changes at the first honest replica.
	Excluded []types.ReplicaID
	// Mutated / Injected / Swallowed count the injector's interventions.
	Mutated   int
	Injected  int
	Swallowed int
	// Violations is empty iff all four invariants held.
	Violations []Violation
}

// Format renders the result in the fixed golden layout.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance %s n=%d seed=%d committed=%d disagreements=%d converged=%v mutated=%d injected=%d swallowed=%d\n",
		r.Campaign, r.N, r.Seed, r.Committed, r.Disagreements, r.Converged, r.Mutated, r.Injected, r.Swallowed)
	fmt.Fprintf(&b, "culprits=%v excluded=%v\n", r.Culprits, r.Excluded)
	if len(r.Violations) == 0 {
		b.WriteString("invariants: ok\n")
		return b.String()
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation (%s): %s\n", v.Invariant, v.Detail)
	}
	return b.String()
}

// campaigns is the ordered registry; order is what reports and the
// seed-matrix CI job iterate in.
var campaigns = []Campaign{
	{
		Name: "equivocation",
		Description: "⌈n/3⌉ replicas send conflicting re-signed AUX votes: " +
			"every honest log gets local PoFs, the coalition is excluded",
		Run: runEquivocation,
	},
	{
		Name: "twins",
		Description: "⌈n/3⌉ replicas have a twin holding their signing key " +
			"that echoes a conflicting digest: local PoFs, exclusion",
		Run: runTwins,
	},
	{
		Name: "stale-epoch",
		Description: "unsigned EST votes shifted across rounds, signed votes " +
			"replayed stale and forged with broken signatures: no accusations",
		Run: runStaleEpoch,
	},
	{
		Name: "cert-mutation",
		Description: "DECIDE certificates mutated with valid signatures " +
			"(truncated, duplicate signer, flipped value): all rejected",
		Run: runCertMutation,
	},
	{
		Name: "replay-reorder",
		Description: "deterministic duplication and delayed re-delivery of " +
			"arbitrary protocol messages: agreement unaffected",
		Run: runReplayReorder,
	},
	{
		Name: "merge-during-catchup",
		Description: "a real coalition fork heals while captured stale DECIDEs " +
			"are replayed into the merge: culprits proven, branches merge",
		Run: runMergeDuringCatchup,
	},
}

// Names lists the registered campaigns in registration order.
func Names() []string {
	out := make([]string, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.Name
	}
	return out
}

// Campaigns returns the registered campaigns in registration order.
func Campaigns() []Campaign {
	out := make([]Campaign, len(campaigns))
	copy(out, campaigns)
	return out
}

// Run executes a registered campaign by name.
func Run(name string, n int, seed int64) (Result, error) {
	for _, c := range campaigns {
		if c.Name == name {
			return c.Run(n, seed)
		}
	}
	return Result{}, fmt.Errorf("conformance: unknown campaign %q (have %v)", name, Names())
}

// fastRounds is the coordinator timeout every campaign uses: short rounds
// keep adversarial runs cheap enough for the fuzz budget.
func fastRounds(r types.Round) time.Duration {
	return 120 * time.Millisecond * time.Duration(r+1)
}

// newCluster builds the shared campaign deployment: full ZLB
// (accountable + recover) on the jittered AWS matrix with the c4.xlarge
// cost model, exactly the scenario engine's environment so conformance
// results and scenario goldens live in the same regime.
func newCluster(n int, seed int64, tweak func(*harness.Options)) (*harness.Cluster, error) {
	opts := harness.Options{
		N:            n,
		Accountable:  true,
		Recover:      true,
		BaseLatency:  latency.Jittered(latency.NewAWSMatrix(), 0.2),
		Cost:         simnet.DefaultCostModel(),
		Seed:         seed,
		BatchTxs:     500,
		BatchBytes:   400 * 500,
		MaxInstances: 3,
		CoordTimeout: fastRounds,
	}
	if tweak != nil {
		tweak(&opts)
	}
	return harness.New(opts)
}

// finish drains the cluster, runs the invariant checker and assembles the
// Result. corrupt is the campaign's ground-truth corrupt set (coalition
// members are added automatically).
func finish(campaign string, n int, seed int64, c *harness.Cluster, inj *Injector, corrupt map[types.ReplicaID]bool, drain time.Duration) Result {
	c.RunUntilQuiet(drain)
	res := Result{
		Campaign:      campaign,
		N:             n,
		Seed:          seed,
		Committed:     c.CommittedInstances(),
		Disagreements: c.Disagreements(),
		Converged:     c.ConvergedAgreement(),
		Culprits:      c.CulpritsDetected(),
		Mutated:       inj.Mutated,
		Injected:      inj.Injected,
		Swallowed:     inj.Swallowed,
	}
	if honest := c.HonestMembers(); len(honest) > 0 {
		seen := make(map[types.ReplicaID]bool)
		for _, change := range c.ChangeResults[honest[0]] {
			for _, id := range change.Excluded {
				if !seen[id] {
					seen[id] = true
					res.Excluded = append(res.Excluded, id)
				}
			}
		}
		res.Excluded = types.SortReplicas(res.Excluded)
	}
	full := make(map[types.ReplicaID]bool, len(corrupt))
	for id := range corrupt {
		full[id] = true
	}
	for _, id := range c.Members {
		if c.Coalition.IsDeceitful(id) {
			full[id] = true
		}
	}
	res.Violations = CheckInvariants(c, full)
	return res
}

// firstIDs returns replica IDs 1..k — the campaign convention for which
// replicas are corrupted, mirroring the adversary package's coalition.
func firstIDs(k int) []types.ReplicaID {
	out := make([]types.ReplicaID, k)
	for i := range out {
		out[i] = types.ReplicaID(i + 1)
	}
	return out
}
