package conformance

import (
	"time"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/adversary"
	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/harness"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/simnet"
	"github.com/zeroloss/zlb/internal/types"
)

// campaignDrain bounds every campaign's quiet-drain: long enough for a
// full detect/exclude/include arc, short enough for the fuzz budget.
const campaignDrain = 10 * time.Minute

// pairKey deduplicates per-recipient injections: one conflicting sibling
// per (sender, recipient, equivocation slot) is enough for a PoF, and
// keeping the volume flat keeps runs cheap and goldens readable.
type pairKey struct {
	from, to types.ReplicaID
	key      accountability.SlotKey
}

// runEquivocation corrupts the first ⌈n/3⌉ replicas at the wire: each of
// their signed AUX votes is delivered unchanged, next to a freshly signed
// vote for the opposite value. Every honest replica assembles local PoFs
// against all ⌈n/3⌉ equivocators, triggers the membership change, and
// excludes them — without the adversary package's scripted coalition ever
// being involved. Consensus outcomes are unaffected: receivers count only
// the first AUX per (signer, round) for voting, so the siblings are pure
// evidence.
func runEquivocation(n int, seed int64) (Result, error) {
	corrupt := firstIDs(types.FaultThreshold(n))
	c, err := newCluster(n, seed, nil)
	if err != nil {
		return Result{}, err
	}
	c.ExcludeFromMetrics(corrupt...)
	corruptSet := make(map[types.ReplicaID]bool, len(corrupt))
	for _, id := range corrupt {
		corruptSet[id] = true
	}
	inj := Arm(c)
	done := make(map[pairKey]bool)
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		a, ok := msg.(*bincon.Aux)
		if !ok || !corruptSet[from] || a.Stmt.Signer != from {
			return msg
		}
		k := pairKey{from: from, to: to, key: a.Stmt.Stmt.Key()}
		if !done[k] {
			done[k] = true
			if twin, err := inj.FlipAux(a); err == nil {
				inj.Inject(from, to, twin, time.Millisecond)
			}
		}
		return msg
	})
	c.Start()
	return finish("equivocation", n, seed, c, inj, corruptSet, campaignDrain), nil
}

// runTwins gives the first ⌈n/3⌉ replicas a twin: a second process
// holding the same signing key that echoes a conflicting digest for every
// reliable broadcast the original echoes. The conflicting ECHO statements
// are genuine signatures on a different value in the same slot — provable
// equivocation attributable to the key, exactly the paper's reason ECHO is
// an equivocation slot.
func runTwins(n int, seed int64) (Result, error) {
	corrupt := firstIDs(types.FaultThreshold(n))
	c, err := newCluster(n, seed, nil)
	if err != nil {
		return Result{}, err
	}
	c.ExcludeFromMetrics(corrupt...)
	corruptSet := make(map[types.ReplicaID]bool, len(corrupt))
	for _, id := range corrupt {
		corruptSet[id] = true
	}
	inj := Arm(c)
	done := make(map[pairKey]bool)
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		e, ok := msg.(*rbc.Echo)
		if !ok || !corruptSet[from] || e.Stmt.Signer != from {
			return msg
		}
		k := pairKey{from: from, to: to, key: e.Stmt.Stmt.Key()}
		if !done[k] {
			done[k] = true
			if twin, err := inj.TwinEcho(e); err == nil {
				inj.Inject(from, to, twin, time.Millisecond)
			}
		}
		return msg
	})
	c.Start()
	return finish("twins", n, seed, c, inj, corruptSet, campaignDrain), nil
}

// runStaleEpoch floods the cluster with temporally displaced votes: every
// third EST is shadowed by a copy shifted one round into the future,
// every fifth AUX is replayed 50 ms stale and shadowed by a forgery whose
// value was flipped without re-signing. None of it is attributable
// evidence — EST is unsigned by design, the replay repeats a statement
// already on record, and the forgery fails verification — so the run must
// end with an untouched chain and zero accusations.
func runStaleEpoch(n int, seed int64) (Result, error) {
	c, err := newCluster(n, seed, func(o *harness.Options) {
		o.MaxInstances = 4
		o.PoolSize = 1
	})
	if err != nil {
		return Result{}, err
	}
	inj := Arm(c)
	estN, auxN := 0, 0
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		switch m := msg.(type) {
		case *bincon.Est:
			estN++
			if estN%3 == 0 {
				inj.Inject(from, to, ShiftEstRound(m, 1), time.Millisecond)
			}
		case *bincon.Aux:
			auxN++
			if auxN%5 == 0 {
				inj.Inject(from, to, m, 50*time.Millisecond) // stale replay
				inj.Inject(from, to, ForgeAux(m), time.Millisecond)
			}
		}
		return msg
	})
	c.Start()
	return finish("stale-epoch", n, seed, c, inj, nil, campaignDrain), nil
}

// runCertMutation shadows every DECIDE with three certificate mutants
// whose individual signatures all verify: one below quorum, one padding
// the quorum with a duplicated signer, one claiming the opposite value
// under the genuine certificate. Receivers must reject all three — on the
// quorum count, the distinctness check, and the statement match — while
// the original DECIDE keeps the chain committing.
func runCertMutation(n int, seed int64) (Result, error) {
	c, err := newCluster(n, seed, func(o *harness.Options) {
		o.PoolSize = 1
	})
	if err != nil {
		return Result{}, err
	}
	inj := Arm(c)
	done := make(map[pairKey]bool)
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		d, ok := msg.(*bincon.Decide)
		if !ok || d.Cert == nil || len(d.Cert.Sigs) < 2 {
			return msg
		}
		k := pairKey{from: from, to: to, key: d.Cert.Stmt.Key()}
		if !done[k] {
			done[k] = true
			inj.Inject(from, to, TruncateCert(d), time.Millisecond)
			inj.Inject(from, to, DuplicateSignerCert(d), 2*time.Millisecond)
			inj.Inject(from, to, FlipDecideValue(d), 3*time.Millisecond)
		}
		return msg
	})
	c.Start()
	return finish("cert-mutation", n, seed, c, inj, nil, campaignDrain), nil
}

// runReplayReorder exercises the duplicate/out-of-order tolerance every
// message handler claims: every fourth delivery is duplicated 20 ms
// later, every seventh is withheld and re-delivered 100 ms late (a
// reordering relative to everything sent after it). Counters, not
// randomness, drive the schedule, so a seed reproduces the exact
// interleaving.
func runReplayReorder(n int, seed int64) (Result, error) {
	c, err := newCluster(n, seed, func(o *harness.Options) {
		o.MaxInstances = 4
		o.PoolSize = 1
	})
	if err != nil {
		return Result{}, err
	}
	inj := Arm(c)
	count := 0
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		count++
		if count%7 == 0 {
			inj.Inject(from, to, msg, 100*time.Millisecond)
			return nil // withheld: the late copy is the only delivery
		}
		if count%4 == 0 {
			inj.Inject(from, to, msg, 20*time.Millisecond)
		}
		return msg
	})
	c.Start()
	return finish("replay-reorder", n, seed, c, inj, nil, campaignDrain), nil
}

// mergeCaptureLimit bounds how many distinct DECIDEs the merge campaign
// records for replay; enough to cover both branches' instances.
const mergeCaptureLimit = 16

// runMergeDuringCatchup is the only campaign with a real scripted
// coalition: the paper's binary-consensus attack forks the chain behind a
// staged partition, and while the heal-and-merge is in progress the
// injector replays DECIDE messages captured during the fork into every
// honest replica — stale certificates arriving mid-catch-up, the
// interleaving most likely to resurrect a consumed proof or double-count
// a culprit. The run must still end converged, with ≥ ⌈n/3⌉ proven
// culprits everywhere and the coalition excluded.
func runMergeDuringCatchup(n int, seed int64) (Result, error) {
	c, err := newCluster(n, seed, func(o *harness.Options) {
		o.Deceitful = adversary.DeceitfulCount(n)
		o.Attack = adversary.AttackBinary
		o.MaxInstances = 4
	})
	if err != nil {
		return Result{}, err
	}
	inj := Arm(c)
	type captured struct {
		from types.ReplicaID
		msg  *bincon.Decide
	}
	var caps []captured
	seen := make(map[*bincon.Decide]bool)
	inj.SetRule(func(from, to types.ReplicaID, msg simnet.Message) simnet.Message {
		if d, ok := msg.(*bincon.Decide); ok && !seen[d] && len(caps) < mergeCaptureLimit {
			seen[d] = true
			caps = append(caps, captured{from: from, msg: d})
		}
		return msg
	})

	// Fork: the coalition's partitions decide alone behind a 5 s stall.
	c.Net.DelayRule = simnet.PartitionDelay(c.Coalition.PartitionOf, 5*time.Second)
	c.Start()
	c.Run(6 * time.Second)

	// Heal, then replay the fork-era DECIDEs into everyone mid-merge.
	c.Net.DelayRule = nil
	for i, cap := range caps {
		for _, h := range c.HonestMembers() {
			inj.Inject(cap.from, h, cap.msg, time.Duration(i+1)*10*time.Millisecond)
		}
	}
	return finish("merge-during-catchup", n, seed, c, inj, nil, campaignDrain), nil
}
