// Package mempool provides the indexed transaction pool every ZLB node
// front-ends consensus with: an insertion-ordered queue with an O(1)
// digest index for deduplication and a prune that relies on the
// transactions' memoized IDs instead of re-hashing every entry. It
// replaces the slice+map pair that used to be duplicated by the zlb
// package and cmd/zlb-node.
//
// The pool stores shared *utxo.Transaction pointers: in the simulated
// deployment all replicas index the same transaction objects, so a digest
// is computed once per transaction for the whole cluster.
package mempool

import (
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// Pool is an indexed mempool. Not safe for concurrent use; the owning
// node serializes access (the simulator is single-threaded, the TCP node
// funnels everything through its event loop).
type Pool struct {
	queue []*utxo.Transaction
	// seen holds every digest ever added. Entries outlive pruning on
	// purpose: clients broadcast to all replicas and may retry, and a
	// transaction that already went through consensus must not re-enter
	// the queue (the ledger also skips it, but re-proposing it would waste
	// a consensus instance).
	seen map[types.Digest]struct{}
	// preverify, when set, observes every newly added transaction — the
	// commit pipeline's handoff: transactions start signature
	// verification on the worker pool the moment they enter the pool, so
	// the batches Take hands to consensus are typically pre-verified by
	// the time they commit.
	preverify func(*utxo.Transaction)
}

// New creates an empty pool.
func New() *Pool {
	return &Pool{seen: make(map[types.Digest]struct{})}
}

// SetPreverify installs the pipeline handoff called once per distinct
// transaction added (nil disables it — sequential mode).
func (p *Pool) SetPreverify(fn func(*utxo.Transaction)) { p.preverify = fn }

// Add enqueues tx unless its digest was ever added before. It reports
// whether the transaction was added.
//
// Add warms every lazily memoized derived value (canonical encoding, ID,
// signing digest) while the transaction is still owned by a single
// goroutine: the pointer is about to be shared across all replicas'
// pools, and with the parallel simulator several replicas may encode or
// hash it concurrently. After Add, those accessors are read-only.
func (p *Pool) Add(tx *utxo.Transaction) bool {
	id := tx.ID()
	if _, dup := p.seen[id]; dup {
		return false
	}
	// Warm the remaining memos only for transactions actually entering
	// the pool (ID is already computed above); rejected duplicates are
	// dropped without paying the extra encode+hash.
	tx.Canonical()
	tx.SigDigest()
	p.seen[id] = struct{}{}
	p.queue = append(p.queue, tx)
	if p.preverify != nil {
		p.preverify(tx)
	}
	return true
}

// Seen reports whether a transaction with the given digest was ever
// added.
func (p *Pool) Seen(id types.Digest) bool {
	_, ok := p.seen[id]
	return ok
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int { return len(p.queue) }

// Take returns up to max transactions in insertion order without removing
// them (they leave the pool when a committed block prunes them). The
// returned slice aliases the pool's queue; callers must not modify it.
func (p *Pool) Take(max int) []*utxo.Transaction {
	if len(p.queue) <= max {
		return p.queue
	}
	return p.queue[:max]
}

// Prune drops the given transactions (typically a committed block's) from
// the queue. With memoized IDs this costs O(len(txs)) map inserts and one
// allocation-free sweep of the queue.
func (p *Pool) Prune(txs []*utxo.Transaction) {
	if len(txs) == 0 || len(p.queue) == 0 {
		return
	}
	gone := make(map[types.Digest]struct{}, len(txs))
	for _, tx := range txs {
		gone[tx.ID()] = struct{}{}
	}
	kept := p.queue[:0]
	for _, tx := range p.queue {
		if _, ok := gone[tx.ID()]; !ok {
			kept = append(kept, tx)
		}
	}
	// Clear the tail so pruned transactions do not leak through the
	// backing array.
	for i := len(kept); i < len(p.queue); i++ {
		p.queue[i] = nil
	}
	p.queue = kept
}
