// Package mempool provides the admission-controlled transaction pool
// every ZLB node front-ends consensus with — the ingress edge between
// untrusted client traffic and the consensus batch source.
//
// The pool keeps two deterministic views of the same pending set: the
// arrival queue (insertion order, the paper's original workload) and a
// priority index ordered by fee rate (fee per canonical byte), which
// admission-controlled deployments batch from so paying traffic is never
// stuck behind a spam flood. Admission is governed by a Policy:
//
//   - fee floor and fee-rate priority ordering,
//   - per-account pending caps and per-account rate limits over a
//     virtual-time window,
//   - replacement-by-fee for a pending (sender, nonce) slot,
//   - size-bounded eviction (transaction count and canonical bytes):
//     when full, the lowest-priority entry is evicted iff the incoming
//     transaction outranks it, otherwise the newcomer is rejected.
//
// Every decision is a pure function of the admission sequence and the
// injected clock — nothing iterates a Go map to decide anything — so a
// fixed-seed simulation produces bit-identical admissions, batches and
// latency percentiles in every execution mode (the property tests in
// policy_test.go and the root determinism suite pin this).
//
// The pool stores shared *utxo.Transaction pointers: in the simulated
// deployment all replicas index the same transaction objects, so a digest
// is computed once per transaction for the whole cluster. All methods are
// safe for concurrent use; the commit pipeline's preverify handoff races
// Submit against the event loop's Take/Prune (see race_test.go).
package mempool

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// Policy parameterizes admission control. The zero value is fully
// permissive: unlimited arrival-order queueing, exactly the pre-admission
// pool (and the configuration the paper-workload goldens run under).
type Policy struct {
	// MaxTxs bounds the pending set by transaction count (0 = unlimited).
	// When full, the lowest-priority entry is evicted if the incoming
	// transaction outranks it; otherwise the incoming one is rejected
	// with ErrPoolFull.
	MaxTxs int
	// MaxBytes bounds the pending set by total canonical encoding size
	// (0 = unlimited). Same eviction rule as MaxTxs.
	MaxBytes int64
	// MaxPerAccount caps the pending transactions of one sender
	// (0 = unlimited). Beyond it, Add fails with ErrAccountCap.
	MaxPerAccount int
	// RatePerAccount caps admissions per sender per RateWindow
	// (0 = unlimited). Beyond it, Add fails with ErrRateLimited. The
	// window position comes from the injected clock (SetClock); the
	// count resets when the clock crosses a window boundary.
	RatePerAccount int
	// RateWindow is the rate-limit window (default 1s when
	// RatePerAccount is set).
	RateWindow time.Duration
	// MinFee rejects transactions whose fee (input sum minus output sum)
	// is below the floor, with ErrFeeTooLow.
	MinFee types.Amount
	// ReplaceBumpPct enables replacement-by-fee when positive: a pending
	// (sender, nonce) slot is replaced iff the newcomer's fee is at
	// least the incumbent's fee grown by this percentage; a smaller bump
	// fails with ErrReplaceUnderpriced. Zero disables replacement: two
	// transactions sharing a (sender, nonce) slot both queue, exactly
	// like the permissive pool.
	ReplaceBumpPct int
	// PriorityOrder makes Take return transactions by descending fee
	// rate (ties: higher fee, then arrival order) instead of arrival
	// order.
	PriorityOrder bool
}

// active reports whether any admission knob is set (the zero Policy
// skips the priority index entirely, keeping the permissive pool's O(1)
// append behavior).
func (p Policy) active() bool {
	return p.MaxTxs > 0 || p.MaxBytes > 0 || p.MaxPerAccount > 0 ||
		p.RatePerAccount > 0 || p.MinFee > 0 || p.ReplaceBumpPct > 0 || p.PriorityOrder
}

// Typed admission verdicts. Callers branch with errors.Is.
var (
	// ErrDuplicate rejects a transaction already pending.
	ErrDuplicate = errors.New("mempool: transaction already pending")
	// ErrCommitted rejects a transaction that was committed in a block
	// since the last checkpoint trim — re-proposing it would waste a
	// consensus instance (the ledger would skip it anyway).
	ErrCommitted = errors.New("mempool: transaction already committed")
	// ErrAccountCap rejects a sender whose pending count is at the cap.
	ErrAccountCap = errors.New("mempool: per-account pending cap reached")
	// ErrRateLimited rejects a sender exceeding its admission rate.
	ErrRateLimited = errors.New("mempool: per-account rate limit exceeded")
	// ErrFeeTooLow rejects a fee below Policy.MinFee.
	ErrFeeTooLow = errors.New("mempool: fee below admission floor")
	// ErrPoolFull rejects a transaction that does not outrank the
	// lowest-priority pending entry of a full pool.
	ErrPoolFull = errors.New("mempool: pool full and fee below eviction floor")
	// ErrReplaceUnderpriced rejects a replacement-by-fee whose bump is
	// below Policy.ReplaceBumpPct.
	ErrReplaceUnderpriced = errors.New("mempool: replacement fee bump too small")
)

// entry is one pending transaction with its memoized admission facts.
type entry struct {
	tx     *utxo.Transaction
	id     types.Digest
	sender utxo.Address
	fee    types.Amount
	size   int64
	seq    uint64
}

// outranks is the pool's total priority order: higher fee rate first
// (compared exactly by cross-multiplication, no float rounding), then
// higher absolute fee, then earlier arrival. Strict for distinct entries,
// so every sorted structure derived from it is deterministic.
func (e *entry) outranks(o *entry) bool {
	l, r := uint64(e.fee)*uint64(o.size), uint64(o.fee)*uint64(e.size)
	if l != r {
		return l > r
	}
	if e.fee != o.fee {
		return e.fee > o.fee
	}
	return e.seq < o.seq
}

// slotKey identifies a (sender, nonce) slot for replacement-by-fee.
type slotKey struct {
	sender utxo.Address
	nonce  uint64
}

// rateBucket is one sender's admission count in the current rate window.
type rateBucket struct {
	window int64
	count  int
}

// Pool is the admission-controlled mempool. All methods are safe for
// concurrent use.
type Pool struct {
	mu     sync.Mutex
	policy Policy
	// clock supplies virtual (or wall) time for rate-limit windows; nil
	// pins the window at zero, which makes RatePerAccount a cap on total
	// admissions per sender.
	clock func() time.Duration
	// preverify, when set, observes every newly admitted transaction —
	// the commit pipeline's handoff: transactions start signature
	// verification on the worker pool the moment they enter the pool.
	// Invoked outside the pool lock.
	preverify func(*utxo.Transaction)

	// pending indexes the queued entries by digest.
	pending map[types.Digest]*entry
	// queue is the arrival-order view.
	queue []*entry
	// prio is the priority-order view (best first), maintained only when
	// the policy is active.
	prio []*entry
	// byAcct counts pending transactions per sender (active policy only).
	byAcct map[utxo.Address]int
	// bySlot indexes pending entries by (sender, nonce) for
	// replacement-by-fee (maintained when ReplaceBumpPct > 0).
	bySlot map[slotKey]*entry
	// committed holds the digests of transactions pruned by committed
	// blocks since the last TrimCommitted — the dedup set that makes
	// re-submitting a committed transaction a typed error instead of a
	// wasted consensus slot.
	committed map[types.Digest]struct{}
	// rates tracks per-sender admission counts per window.
	rates map[utxo.Address]rateBucket

	bytes     int64
	seq       uint64
	evictions uint64
	admitted  uint64
	// rejects counts Add failures by reason label (see RejectReason) —
	// the per-reason series the node metrics endpoint exports.
	rejects map[string]uint64
}

// RejectReason maps a typed admission error to its stable metrics label.
// Unknown errors (including nil) map to "other".
func RejectReason(err error) string {
	switch {
	case errors.Is(err, ErrDuplicate):
		return "duplicate"
	case errors.Is(err, ErrCommitted):
		return "committed"
	case errors.Is(err, ErrAccountCap):
		return "account_cap"
	case errors.Is(err, ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, ErrFeeTooLow):
		return "fee_too_low"
	case errors.Is(err, ErrPoolFull):
		return "pool_full"
	case errors.Is(err, ErrReplaceUnderpriced):
		return "replace_underpriced"
	default:
		return "other"
	}
}

// RejectReasons is the complete label set RejectReason can return, in
// stable order. The node metrics endpoint registers one rejection series
// per reason up front, so every scrape exposes the full set (zeros
// included) instead of labels appearing as rejections happen.
var RejectReasons = []string{
	"duplicate", "committed", "account_cap", "rate_limited",
	"fee_too_low", "pool_full", "replace_underpriced", "other",
}

// New creates an empty pool with the permissive zero policy.
func New() *Pool { return NewWithPolicy(Policy{}) }

// NewWithPolicy creates an empty pool governed by the given policy.
func NewWithPolicy(policy Policy) *Pool {
	if policy.RatePerAccount > 0 && policy.RateWindow == 0 {
		policy.RateWindow = time.Second
	}
	return &Pool{
		policy:    policy,
		pending:   make(map[types.Digest]*entry),
		byAcct:    make(map[utxo.Address]int),
		bySlot:    make(map[slotKey]*entry),
		committed: make(map[types.Digest]struct{}),
		rates:     make(map[utxo.Address]rateBucket),
		rejects:   make(map[string]uint64),
	}
}

// Policy returns the pool's admission policy.
func (p *Pool) Policy() Policy { return p.policy }

// SetPreverify installs the pipeline handoff called once per admitted
// transaction (nil disables it — sequential mode).
func (p *Pool) SetPreverify(fn func(*utxo.Transaction)) {
	p.mu.Lock()
	p.preverify = fn
	p.mu.Unlock()
}

// SetClock injects the time source for rate-limit windows — the
// simulator's virtual clock in simulated deployments, wall time since
// start on a real node. Admission decisions then depend only on the
// admission sequence and this clock, never on host scheduling.
func (p *Pool) SetClock(fn func() time.Duration) {
	p.mu.Lock()
	p.clock = fn
	p.mu.Unlock()
}

// Add runs the transaction through admission. It returns nil when the
// transaction enters the pool and a typed error (ErrDuplicate,
// ErrCommitted, ErrFeeTooLow, ErrReplaceUnderpriced, ErrRateLimited,
// ErrAccountCap, ErrPoolFull) when it does not.
//
// Add warms every lazily memoized derived value (canonical encoding, ID,
// signing digest) while the transaction is still owned by a single
// goroutine: the pointer is about to be shared across all replicas'
// pools, and with the parallel simulator several replicas may encode or
// hash it concurrently. After Add, those accessors are read-only.
func (p *Pool) Add(tx *utxo.Transaction) error {
	id := tx.ID()
	p.mu.Lock()
	if _, done := p.committed[id]; done {
		p.rejects[RejectReason(ErrCommitted)]++
		p.mu.Unlock()
		return ErrCommitted
	}
	if _, dup := p.pending[id]; dup {
		p.rejects[RejectReason(ErrDuplicate)]++
		p.mu.Unlock()
		return ErrDuplicate
	}
	// Warm the remaining memos only for transactions passing the cheap
	// dedup (ID is already computed above); rejected duplicates are
	// dropped without paying the extra encode+hash.
	tx.Canonical()
	tx.SigDigest()
	e := &entry{
		tx:     tx,
		id:     id,
		sender: utxo.AddressOf(tx.Sender),
		fee:    tx.Fee(),
		size:   int64(tx.CanonicalSize()),
	}
	if err := p.admit(e); err != nil {
		p.rejects[RejectReason(err)]++
		p.mu.Unlock()
		return err
	}
	p.admitted++
	fn := p.preverify
	p.mu.Unlock()
	if fn != nil {
		fn(tx)
	}
	return nil
}

// admit applies the policy and inserts the entry. Caller holds the lock.
func (p *Pool) admit(e *entry) error {
	pol := &p.policy
	if !pol.active() {
		// Permissive fast path: O(1) append, no priority index.
		e.seq = p.seq
		p.seq++
		p.pending[e.id] = e
		p.queue = append(p.queue, e)
		p.bytes += e.size
		return nil
	}
	if e.fee < pol.MinFee {
		return ErrFeeTooLow
	}
	// Replacement-by-fee: a pending (sender, nonce) slot is an explicit
	// replacement request, judged before caps (the incumbent is leaving,
	// so the sender's pending count does not grow).
	var replacing *entry
	if pol.ReplaceBumpPct > 0 {
		if inc, ok := p.bySlot[slotKey{sender: e.sender, nonce: e.tx.Nonce}]; ok {
			// fee >= incumbent * (100 + bump) / 100, in exact integers.
			if uint64(e.fee)*100 < uint64(inc.fee)*uint64(100+pol.ReplaceBumpPct) {
				return ErrReplaceUnderpriced
			}
			replacing = inc
		}
	}
	if pol.RatePerAccount > 0 {
		var now time.Duration
		if p.clock != nil {
			now = p.clock()
		}
		window := int64(now / pol.RateWindow)
		b := p.rates[e.sender]
		if b.window != window {
			b = rateBucket{window: window}
		}
		if b.count >= pol.RatePerAccount {
			return ErrRateLimited
		}
		b.count++
		defer func() { p.rates[e.sender] = b }()
	}
	if replacing == nil && pol.MaxPerAccount > 0 && p.byAcct[e.sender] >= pol.MaxPerAccount {
		return ErrAccountCap
	}
	if replacing != nil {
		p.remove(replacing)
		p.evictions++
	}
	// Size-bounded eviction: shed lowest-priority entries while the pool
	// would overflow, but only for a newcomer that outranks them.
	for p.overflowWith(e) {
		victim := p.prio[len(p.prio)-1]
		if !e.outranks(victim) {
			return ErrPoolFull
		}
		p.remove(victim)
		p.evictions++
	}
	e.seq = p.seq
	p.seq++
	p.pending[e.id] = e
	p.queue = append(p.queue, e)
	p.insertPrio(e)
	p.byAcct[e.sender]++
	if pol.ReplaceBumpPct > 0 {
		p.bySlot[slotKey{sender: e.sender, nonce: e.tx.Nonce}] = e
	}
	p.bytes += e.size
	return nil
}

// overflowWith reports whether admitting e would exceed a capacity bound.
// Caller holds the lock.
func (p *Pool) overflowWith(e *entry) bool {
	if len(p.prio) == 0 {
		return false
	}
	if p.policy.MaxTxs > 0 && len(p.pending)+1 > p.policy.MaxTxs {
		return true
	}
	return p.policy.MaxBytes > 0 && p.bytes+e.size > p.policy.MaxBytes
}

// insertPrio inserts e into the priority view (best first). Caller holds
// the lock.
func (p *Pool) insertPrio(e *entry) {
	i := sort.Search(len(p.prio), func(i int) bool { return e.outranks(p.prio[i]) })
	p.prio = append(p.prio, nil)
	copy(p.prio[i+1:], p.prio[i:])
	p.prio[i] = e
}

// remove drops a pending entry from every structure. Caller holds the
// lock.
func (p *Pool) remove(e *entry) {
	delete(p.pending, e.id)
	p.bytes -= e.size
	p.byAcct[e.sender]--
	if p.byAcct[e.sender] <= 0 {
		delete(p.byAcct, e.sender)
	}
	key := slotKey{sender: e.sender, nonce: e.tx.Nonce}
	if cur, ok := p.bySlot[key]; ok && cur == e {
		delete(p.bySlot, key)
	}
	for i, q := range p.queue {
		if q == e {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			break
		}
	}
	// The priority order is strict, so binary search lands exactly on e.
	i := sort.Search(len(p.prio), func(i int) bool { return !p.prio[i].outranks(e) })
	if i < len(p.prio) && p.prio[i] == e {
		p.prio = append(p.prio[:i], p.prio[i+1:]...)
	}
}

// Seen reports whether a transaction with the given digest is pending or
// was committed since the last checkpoint trim.
func (p *Pool) Seen(id types.Digest) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pending[id]; ok {
		return true
	}
	_, done := p.committed[id]
	return done
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Bytes returns the total canonical size of the queued transactions.
func (p *Pool) Bytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// Evictions returns the cumulative count of entries shed by
// replacement-by-fee and capacity eviction.
func (p *Pool) Evictions() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.evictions
}

// Stats is a point-in-time snapshot of the pool's counters, the shape
// the node metrics endpoint scrapes.
type Stats struct {
	Pending   int    `json:"pending"`
	Bytes     int64  `json:"bytes"`
	Admitted  uint64 `json:"admitted"`
	Evictions uint64 `json:"evictions"`
	// Rejects counts Add failures by reason label (copy; safe to retain).
	Rejects map[string]uint64 `json:"rejects,omitempty"`
}

// Stats snapshots the pool counters in one lock acquisition.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Pending:   len(p.pending),
		Bytes:     p.bytes,
		Admitted:  p.admitted,
		Evictions: p.evictions,
		Rejects:   make(map[string]uint64, len(p.rejects)),
	}
	for k, v := range p.rejects {
		s.Rejects[k] = v
	}
	return s
}

// Take returns up to max pending transactions without removing them
// (they leave the pool when a committed block prunes them): by
// descending priority under Policy.PriorityOrder, by arrival order
// otherwise. Callers must not modify the returned transactions.
func (p *Pool) Take(max int) []*utxo.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.queue
	if p.policy.PriorityOrder {
		src = p.prio
	}
	n := len(src)
	if n > max {
		n = max
	}
	out := make([]*utxo.Transaction, n)
	for i := 0; i < n; i++ {
		out[i] = src[i].tx
	}
	return out
}

// Prune processes a committed block's transactions: each is recorded in
// the committed set (so a client retry after commit is rejected with
// ErrCommitted, whether or not this pool ever queued it) and dropped
// from the pending queue if present.
func (p *Pool) Prune(txs []*utxo.Transaction) {
	if len(txs) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	gone := make(map[types.Digest]struct{}, len(txs))
	for _, tx := range txs {
		id := tx.ID()
		gone[id] = struct{}{}
		p.committed[id] = struct{}{}
	}
	if len(p.pending) == 0 {
		return
	}
	dropped := false
	for _, tx := range txs {
		e, ok := p.pending[tx.ID()]
		if !ok {
			continue
		}
		dropped = true
		delete(p.pending, e.id)
		p.bytes -= e.size
		p.byAcct[e.sender]--
		if p.byAcct[e.sender] <= 0 {
			delete(p.byAcct, e.sender)
		}
		key := slotKey{sender: e.sender, nonce: e.tx.Nonce}
		if cur, ok := p.bySlot[key]; ok && cur == e {
			delete(p.bySlot, key)
		}
	}
	if !dropped {
		return
	}
	// One allocation-free sweep per view instead of a splice per entry.
	p.queue = sweep(p.queue, gone)
	p.prio = sweep(p.prio, gone)
}

// sweep compacts a view in place, dropping entries whose digest is in
// gone, and clears the freed tail so pruned transactions do not leak
// through the backing array.
func sweep(view []*entry, gone map[types.Digest]struct{}) []*entry {
	kept := view[:0]
	for _, e := range view {
		if _, ok := gone[e.id]; !ok {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(view); i++ {
		view[i] = nil
	}
	return kept
}

// TrimCommitted clears the committed-transaction dedup set — called when
// a checkpoint is cut, which bounds the set's memory to one checkpoint
// interval. A retry of an older committed transaction is then admitted
// again, wastes pool space until proposed, and is skipped by the ledger.
func (p *Pool) TrimCommitted() {
	p.mu.Lock()
	p.committed = make(map[types.Digest]struct{})
	p.mu.Unlock()
}
