package mempool

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

// feeTx builds a self-payment from w with the given fee and nonce-unique
// shape: inputs cover value+fee, the fee stays unclaimed.
func feeTx(t *testing.T, w *utxo.Wallet, salt byte, value, fee types.Amount) *utxo.Transaction {
	t.Helper()
	op := utxo.Outpoint{TxID: types.Hash([]byte{salt}), Index: 0}
	tx, err := w.PayWithFee([]utxo.Input{{Prev: op, Value: value + fee}},
		[]utxo.Output{{Account: w.Address(), Value: value}}, fee)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// wideTx is feeTx with two inputs: a larger canonical encoding, so fee
// rate (fee per byte) differs from absolute fee.
func wideTx(t *testing.T, w *utxo.Wallet, salt byte, value, fee types.Amount) *utxo.Transaction {
	t.Helper()
	half := (value + fee) / 2
	tx, err := w.PayWithFee([]utxo.Input{
		{Prev: utxo.Outpoint{TxID: types.Hash([]byte{salt, 1})}, Value: half},
		{Prev: utxo.Outpoint{TxID: types.Hash([]byte{salt, 2})}, Value: value + fee - half},
	}, []utxo.Output{{Account: w.Address(), Value: value}}, fee)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func takeIDs(p *Pool) []types.Digest {
	txs := p.Take(1 << 20)
	ids := make([]types.Digest, len(txs))
	for i, tx := range txs {
		ids[i] = tx.ID()
	}
	return ids
}

// TestAdmissionPolicyTable drives the individual admission rules.
func TestAdmissionPolicyTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(t *testing.T)
	}{
		{"min fee floor", func(t *testing.T) {
			p := NewWithPolicy(Policy{MinFee: 10})
			w := testWallet(t, 1)
			if err := p.Add(feeTx(t, w, 1, 100, 9)); !errors.Is(err, ErrFeeTooLow) {
				t.Errorf("fee 9 under floor 10: got %v, want ErrFeeTooLow", err)
			}
			if err := p.Add(feeTx(t, w, 2, 100, 10)); err != nil {
				t.Errorf("fee at floor rejected: %v", err)
			}
		}},
		{"per-account cap", func(t *testing.T) {
			p := NewWithPolicy(Policy{MaxPerAccount: 2})
			w1, w2 := testWallet(t, 1), testWallet(t, 2)
			a := feeTx(t, w1, 1, 100, 1)
			b := feeTx(t, w1, 2, 100, 1)
			for _, tx := range []*utxo.Transaction{a, b} {
				if err := p.Add(tx); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Add(feeTx(t, w1, 3, 100, 1)); !errors.Is(err, ErrAccountCap) {
				t.Errorf("third pending of one sender: got %v, want ErrAccountCap", err)
			}
			// Other senders are unaffected.
			if err := p.Add(feeTx(t, w2, 1, 100, 1)); err != nil {
				t.Errorf("other sender capped: %v", err)
			}
			// A committed block frees the sender's quota.
			p.Prune([]*utxo.Transaction{a})
			if err := p.Add(feeTx(t, w1, 4, 100, 1)); err != nil {
				t.Errorf("post-prune admission: %v", err)
			}
		}},
		{"per-account rate limit", func(t *testing.T) {
			p := NewWithPolicy(Policy{RatePerAccount: 2, RateWindow: time.Second})
			var now time.Duration
			p.SetClock(func() time.Duration { return now })
			w := testWallet(t, 1)
			for i := byte(0); i < 2; i++ {
				if err := p.Add(feeTx(t, w, i, 100, 1)); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Add(feeTx(t, w, 2, 100, 1)); !errors.Is(err, ErrRateLimited) {
				t.Errorf("third admission in window: got %v, want ErrRateLimited", err)
			}
			// The next window admits again; rejects did not consume quota.
			now = 1100 * time.Millisecond
			if err := p.Add(feeTx(t, w, 3, 100, 1)); err != nil {
				t.Errorf("fresh window admission: %v", err)
			}
		}},
		{"replacement by fee", func(t *testing.T) {
			p := NewWithPolicy(Policy{ReplaceBumpPct: 10, MaxPerAccount: 1})
			w := testWallet(t, 1)
			old := feeTx(t, w, 1, 100, 100)
			if err := p.Add(old); err != nil {
				t.Fatal(err)
			}
			// Same (sender, nonce) slot, insufficient bump: 109 < 110.
			under := feeTx(t, w, 2, 100, 109)
			under.Nonce = old.Nonce
			under.Invalidate()
			if err := p.Add(under); !errors.Is(err, ErrReplaceUnderpriced) {
				t.Errorf("9%% bump: got %v, want ErrReplaceUnderpriced", err)
			}
			// Sufficient bump replaces the incumbent — and does so within
			// MaxPerAccount=1: a replacement is not a second pending tx.
			repl := feeTx(t, w, 3, 100, 110)
			repl.Nonce = old.Nonce
			repl.Invalidate()
			if err := p.Add(repl); err != nil {
				t.Fatalf("10%% bump rejected: %v", err)
			}
			if p.Len() != 1 {
				t.Fatalf("len %d after replacement, want 1", p.Len())
			}
			if ids := takeIDs(p); len(ids) != 1 || ids[0] != repl.ID() {
				t.Error("replacement did not swap the pending entry")
			}
			if p.Seen(old.ID()) {
				t.Error("replaced tx still Seen")
			}
			if p.Evictions() != 1 {
				t.Errorf("evictions %d, want 1", p.Evictions())
			}
		}},
		{"count-bounded eviction order", func(t *testing.T) {
			p := NewWithPolicy(Policy{MaxTxs: 3, PriorityOrder: true})
			w := testWallet(t, 1)
			lo := feeTx(t, w, 1, 100, 10)
			mid := feeTx(t, w, 2, 100, 20)
			hi := feeTx(t, w, 3, 100, 30)
			for _, tx := range []*utxo.Transaction{mid, lo, hi} {
				if err := p.Add(tx); err != nil {
					t.Fatal(err)
				}
			}
			// A newcomer below the floor bounces; the pool is unchanged.
			if err := p.Add(feeTx(t, w, 4, 100, 5)); !errors.Is(err, ErrPoolFull) {
				t.Errorf("low-fee newcomer on full pool: got %v, want ErrPoolFull", err)
			}
			// A better-paying newcomer evicts exactly the worst entry.
			top := feeTx(t, w, 5, 100, 40)
			if err := p.Add(top); err != nil {
				t.Fatalf("high-fee newcomer rejected: %v", err)
			}
			want := []types.Digest{top.ID(), hi.ID(), mid.ID()}
			got := takeIDs(p)
			if len(got) != len(want) {
				t.Fatalf("len %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("priority order [%d]: got %v, want %v", i, got[i], want[i])
				}
			}
			if p.Seen(lo.ID()) {
				t.Error("evicted tx still Seen")
			}
		}},
		{"byte-bounded eviction", func(t *testing.T) {
			w := testWallet(t, 1)
			one := feeTx(t, w, 1, 100, 1)
			sz := int64(one.CanonicalSize())
			p := NewWithPolicy(Policy{MaxBytes: 2 * sz})
			if err := p.Add(one); err != nil {
				t.Fatal(err)
			}
			if err := p.Add(feeTx(t, w, 2, 100, 2)); err != nil {
				t.Fatal(err)
			}
			if err := p.Add(feeTx(t, w, 3, 100, 3)); err != nil {
				t.Fatalf("byte eviction rejected better payer: %v", err)
			}
			if p.Len() != 2 || p.Bytes() != 2*sz {
				t.Errorf("pool %d txs / %d bytes, want 2 / %d", p.Len(), p.Bytes(), 2*sz)
			}
			if p.Seen(one.ID()) {
				t.Error("lowest-fee entry survived byte eviction")
			}
		}},
		{"fee rate beats absolute fee", func(t *testing.T) {
			p := NewWithPolicy(Policy{PriorityOrder: true})
			w := testWallet(t, 1)
			small := feeTx(t, w, 1, 100, 20) // 1-input encoding
			big := wideTx(t, w, 2, 100, 25)  // 2-input encoding, higher fee
			if big.CanonicalSize() <= small.CanonicalSize() {
				t.Fatal("wideTx not larger than feeTx")
			}
			if err := p.Add(big); err != nil {
				t.Fatal(err)
			}
			if err := p.Add(small); err != nil {
				t.Fatal(err)
			}
			// 20 per ~128B outranks 25 per ~172B.
			ids := takeIDs(p)
			if ids[0] != small.ID() {
				t.Error("higher fee rate must outrank higher absolute fee")
			}
		}},
		{"arrival order preserved without PriorityOrder", func(t *testing.T) {
			p := NewWithPolicy(Policy{MaxTxs: 10})
			w := testWallet(t, 1)
			a := feeTx(t, w, 1, 100, 30)
			b := feeTx(t, w, 2, 100, 10)
			for _, tx := range []*utxo.Transaction{a, b} {
				if err := p.Add(tx); err != nil {
					t.Fatal(err)
				}
			}
			ids := takeIDs(p)
			if ids[0] != a.ID() || ids[1] != b.ID() {
				t.Error("bounded pool without PriorityOrder must keep arrival order")
			}
		}},
	} {
		t.Run(tc.name, tc.run)
	}
}

// TestAdmissionOrderIndependentOfMapIteration is the determinism
// property test: two pools fed the identical admission sequence must
// produce identical verdicts, batch order and eviction counts — no
// decision may leak Go map iteration order (each map's iteration order
// differs between the two pools and between -count=10 repetitions).
func TestAdmissionOrderIndependentOfMapIteration(t *testing.T) {
	policy := Policy{
		MaxTxs:         24,
		MaxPerAccount:  5,
		RatePerAccount: 7,
		RateWindow:     time.Second,
		MinFee:         1,
		ReplaceBumpPct: 10,
		PriorityOrder:  true,
	}
	wallets := make([]*utxo.Wallet, 6)
	for i := range wallets {
		wallets[i] = testWallet(t, int64(i)+100)
	}
	// One deterministic admission sequence: senders interleaved, fees
	// cycling, occasional same-nonce replacements. Transactions are
	// built once and shared by both pools (exactly how a cluster's n
	// pools share pointers).
	var seq []*utxo.Transaction
	for i := 0; i < 120; i++ {
		w := wallets[i%len(wallets)]
		fee := types.Amount(1 + (i*7)%40)
		tx := feeTx(t, w, byte(i), 100, fee)
		seq = append(seq, tx)
		if i%11 == 3 {
			repl := feeTx(t, w, byte(i)+200, 100, fee*2)
			repl.Nonce = tx.Nonce
			repl.Invalidate()
			seq = append(seq, repl)
		}
	}
	run := func() ([]string, []types.Digest, uint64) {
		p := NewWithPolicy(policy)
		var now time.Duration
		p.SetClock(func() time.Duration { return now })
		verdicts := make([]string, 0, len(seq))
		for i, tx := range seq {
			now = time.Duration(i) * 40 * time.Millisecond
			verdicts = append(verdicts, fmt.Sprint(p.Add(tx)))
		}
		return verdicts, takeIDs(p), p.Evictions()
	}
	v1, ids1, ev1 := run()
	v2, ids2, ev2 := run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d diverged: %q vs %q", i, v1[i], v2[i])
		}
	}
	if len(ids1) != len(ids2) {
		t.Fatalf("batch sizes diverged: %d vs %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("batch order diverged at %d", i)
		}
	}
	if ev1 != ev2 {
		t.Fatalf("eviction counts diverged: %d vs %d", ev1, ev2)
	}
}
