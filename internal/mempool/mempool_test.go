package mempool

import (
	"errors"
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

func testWallet(t *testing.T, seed int64) *utxo.Wallet {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeSim)
	scheme, err := crypto.NewScheme(crypto.SchemeSim, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return utxo.NewWallet(kp, scheme)
}

func testTxs(t *testing.T, n int) []*utxo.Transaction {
	t.Helper()
	w := testWallet(t, 3)
	txs := make([]*utxo.Transaction, 0, n)
	for i := 0; i < n; i++ {
		op := utxo.Outpoint{TxID: types.Hash([]byte{byte(i)}), Index: 0}
		tx, err := w.Pay([]utxo.Input{{Prev: op, Value: 50}},
			[]utxo.Output{{Account: w.Address(), Value: 50}})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

func TestAddDedupTakePrune(t *testing.T) {
	p := New()
	txs := testTxs(t, 5)
	for i, tx := range txs {
		if err := p.Add(tx); err != nil {
			t.Fatalf("tx %d rejected: %v", i, err)
		}
		if err := p.Add(tx); !errors.Is(err, ErrDuplicate) {
			t.Fatalf("tx %d re-add: got %v, want ErrDuplicate", i, err)
		}
	}
	if p.Len() != 5 {
		t.Fatalf("len %d, want 5", p.Len())
	}

	// Take preserves insertion order and caps at max.
	take := p.Take(3)
	if len(take) != 3 {
		t.Fatalf("took %d, want 3", len(take))
	}
	for i := range take {
		if take[i].ID() != txs[i].ID() {
			t.Errorf("take[%d] out of order", i)
		}
	}
	if got := p.Take(100); len(got) != 5 {
		t.Errorf("uncapped take returned %d, want 5", len(got))
	}

	// Prune the first three (a committed block), keep the rest in order.
	p.Prune(txs[:3])
	if p.Len() != 2 {
		t.Fatalf("len after prune %d, want 2", p.Len())
	}
	rest := p.Take(10)
	if rest[0].ID() != txs[3].ID() || rest[1].ID() != txs[4].ID() {
		t.Error("prune broke queue order")
	}

	// A pruned (committed) transaction must not re-enter the queue.
	if err := p.Add(txs[0]); !errors.Is(err, ErrCommitted) {
		t.Errorf("committed tx re-add: got %v, want ErrCommitted", err)
	}
	if !p.Seen(txs[0].ID()) {
		t.Error("pruned tx forgotten")
	}
}

// TestCommittedDuplicateRejected is the regression test for the silent
// committed-duplicate bug: a transaction committed since the last
// checkpoint — whether or not this pool ever queued it — must be
// rejected with ErrCommitted instead of silently re-entering the queue
// and wasting a consensus slot. After TrimCommitted (a checkpoint cut)
// the dedup obligation expires and the transaction is admissible again.
func TestCommittedDuplicateRejected(t *testing.T) {
	p := New()
	txs := testTxs(t, 5)
	for _, tx := range txs[:3] {
		if err := p.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	// A committed block carrying transactions this pool never queued
	// (other replicas proposed them) leaves the queue untouched...
	p.Prune(txs[3:])
	p.Prune(nil)
	if p.Len() != 3 {
		t.Errorf("len %d after foreign prunes, want 3", p.Len())
	}
	// ...but the foreign transactions are committed now: a client retry
	// must be rejected, not silently re-queued.
	if err := p.Add(txs[3]); !errors.Is(err, ErrCommitted) {
		t.Errorf("committed foreign tx re-add: got %v, want ErrCommitted", err)
	}
	if !p.Seen(txs[3].ID()) {
		t.Error("committed foreign tx not in Seen")
	}

	// A checkpoint bounds the dedup set: after the trim the old
	// transaction may be admitted again (the ledger still skips it).
	p.TrimCommitted()
	if err := p.Add(txs[3]); err != nil {
		t.Errorf("post-checkpoint re-add: got %v, want nil", err)
	}
	if p.Len() != 4 {
		t.Errorf("len %d after post-checkpoint re-add, want 4", p.Len())
	}
}
