package mempool

import (
	"testing"

	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
)

func testTxs(t *testing.T, n int) []*utxo.Transaction {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeSim)
	scheme, err := crypto.NewScheme(crypto.SchemeSim, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(3))
	if err != nil {
		t.Fatal(err)
	}
	w := utxo.NewWallet(kp, scheme)
	txs := make([]*utxo.Transaction, 0, n)
	for i := 0; i < n; i++ {
		op := utxo.Outpoint{TxID: types.Hash([]byte{byte(i)}), Index: 0}
		tx, err := w.Pay([]utxo.Input{{Prev: op, Value: 50}},
			[]utxo.Output{{Account: w.Address(), Value: 50}})
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	return txs
}

func TestAddDedupTakePrune(t *testing.T) {
	p := New()
	txs := testTxs(t, 5)
	for i, tx := range txs {
		if !p.Add(tx) {
			t.Fatalf("tx %d rejected", i)
		}
		if p.Add(tx) {
			t.Fatalf("tx %d accepted twice", i)
		}
	}
	if p.Len() != 5 {
		t.Fatalf("len %d, want 5", p.Len())
	}

	// Take preserves insertion order and caps at max.
	take := p.Take(3)
	if len(take) != 3 {
		t.Fatalf("took %d, want 3", len(take))
	}
	for i := range take {
		if take[i].ID() != txs[i].ID() {
			t.Errorf("take[%d] out of order", i)
		}
	}
	if got := p.Take(100); len(got) != 5 {
		t.Errorf("uncapped take returned %d, want 5", len(got))
	}

	// Prune the first three (a committed block), keep the rest in order.
	p.Prune(txs[:3])
	if p.Len() != 2 {
		t.Fatalf("len after prune %d, want 2", p.Len())
	}
	rest := p.Take(10)
	if rest[0].ID() != txs[3].ID() || rest[1].ID() != txs[4].ID() {
		t.Error("prune broke queue order")
	}

	// A pruned (committed) transaction must not re-enter the queue.
	if p.Add(txs[0]) {
		t.Error("committed tx re-added after prune")
	}
	if !p.Seen(txs[0].ID()) {
		t.Error("pruned tx forgotten")
	}
}

func TestPruneUnknownTxs(t *testing.T) {
	p := New()
	txs := testTxs(t, 5)
	for _, tx := range txs[:3] {
		p.Add(tx)
	}
	// Pruning a block whose transactions were never queued here (other
	// replicas proposed them) leaves the queue untouched.
	p.Prune(txs[3:])
	p.Prune(nil)
	if p.Len() != 3 {
		t.Errorf("len %d after no-op prunes, want 3", p.Len())
	}
	// And those foreign transactions can still be added afterwards.
	if !p.Add(txs[3]) {
		t.Error("foreign tx rejected after being pruned-while-absent")
	}
}
