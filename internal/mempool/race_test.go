package mempool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/utxo"
)

// TestPoolConcurrentAdmission hammers one admission-controlled pool from
// parallel submitters, a batching/pruning loop and a preverify re-binder
// — the shape of the commit pipeline's handoff, where client submissions
// race the event loop's Take/Prune and the pipeline swaps the preverify
// hook. The priority index, rate buckets and committed set must stay
// coherent under -race.
func TestPoolConcurrentAdmission(t *testing.T) {
	p := NewWithPolicy(Policy{
		MaxTxs:         256,
		MaxPerAccount:  64,
		RatePerAccount: 1 << 20, // windows exercised, never limiting
		RateWindow:     time.Second,
		ReplaceBumpPct: 10,
		PriorityOrder:  true,
	})
	var clock int64
	p.SetClock(func() time.Duration {
		return time.Duration(atomic.AddInt64(&clock, 1)) * time.Millisecond
	})
	p.SetPreverify(func(tx *utxo.Transaction) { _ = tx.ID() })

	const senders = 4
	const perSender = 200
	byOwner := make([][]*utxo.Transaction, senders)
	for s := 0; s < senders; s++ {
		w := testWallet(t, int64(s)+50)
		for i := 0; i < perSender; i++ {
			tx, err := w.PayWithFee(
				[]utxo.Input{{Prev: utxo.Outpoint{TxID: fakeTxID(s, i)}, Value: 100}},
				[]utxo.Output{{Account: w.Address(), Value: 90}}, 10)
			if err != nil {
				t.Fatal(err)
			}
			byOwner[s] = append(byOwner[s], tx)
		}
	}

	var submitters sync.WaitGroup
	for s := 0; s < senders; s++ {
		submitters.Add(1)
		go func(txs []*utxo.Transaction) {
			defer submitters.Done()
			for _, tx := range txs {
				_ = p.Add(tx)
			}
		}(byOwner[s])
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	// The event loop: batch, occasionally prune what it batched.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := p.Take(32)
			if i%4 == 3 && len(batch) > 0 {
				p.Prune(batch[:1])
			}
			_ = p.Len()
			_ = p.Bytes()
			_ = p.Evictions()
		}
	}()
	// The pipeline re-binding its handoff mid-run.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; i < 100; i++ {
			p.SetPreverify(func(tx *utxo.Transaction) { _ = tx.Canonical() })
		}
	}()

	submitters.Wait()
	close(stop)
	aux.Wait()

	if p.Len() > 256 {
		t.Errorf("pool overflowed its MaxTxs bound: %d", p.Len())
	}
	// Every pending transaction is re-add-rejectable: pending entries are
	// duplicates, pruned ones committed — never silently re-queued.
	for _, tx := range p.Take(1 << 20) {
		if err := p.Add(tx); err == nil {
			t.Fatalf("pending tx %v re-admitted", tx.ID())
		}
	}
}

// fakeTxID derives a unique fake outpoint TxID per (sender, index).
func fakeTxID(s, i int) (d [32]byte) {
	d[0] = byte(s)
	d[1] = byte(i)
	d[2] = byte(i >> 8)
	return d
}
