package load

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/zeroloss/zlb"
	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/types"
)

// rejectColumns is the fixed order reject reasons appear in reports.
var rejectColumns = []string{"fee", "rate", "cap", "full", "replace", "dup", "committed", "other"}

// txRecord tracks one submitted transaction from arrival to block
// inclusion at the observing replica.
type txRecord struct {
	phase, class int
	submit       time.Duration
	commit       time.Duration // zero until included in a committed block
}

// recorder accumulates the run's raw observations. The mutex guards the
// map against the commit callback; in the simulated deployment the
// driver and the event loop alternate, but -race runs deserve the fence.
type recorder struct {
	mu    sync.Mutex
	byID  map[types.Digest]*txRecord
	order []types.Digest // submission order, the deterministic iteration
	// starvedCnt / rejected are indexed [phase][class].
	starvedCnt [][]int
	rejected   []map[string]int // keyed by (phase, class, reason)
	phases     int
	classes    int
}

func newRecorder(phases, classes int) *recorder {
	r := &recorder{
		byID:       make(map[types.Digest]*txRecord),
		starvedCnt: make([][]int, phases),
		phases:     phases,
		classes:    classes,
	}
	for i := range r.starvedCnt {
		r.starvedCnt[i] = make([]int, classes)
	}
	r.rejected = make([]map[string]int, phases*classes)
	for i := range r.rejected {
		r.rejected[i] = make(map[string]int)
	}
	return r
}

func (r *recorder) cell(phase, class int) int { return phase*r.classes + class }

func (r *recorder) starved(phase, class int) {
	r.starvedCnt[phase][class]++
}

func (r *recorder) submitted(phase, class int, id types.Digest, at time.Duration, verdict error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if verdict != nil {
		r.rejected[r.cell(phase, class)][rejectReason(verdict)]++
		return
	}
	if _, dup := r.byID[id]; dup {
		return
	}
	r.byID[id] = &txRecord{phase: phase, class: class, submit: at}
	r.order = append(r.order, id)
}

// onCommit is the cluster's OnCommittedBatch observer: the first block
// that includes a submitted transaction stamps its commit time.
func (r *recorder) onCommit(_ uint64, txs []*zlb.Transaction, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tx := range txs {
		if rec, ok := r.byID[tx.ID()]; ok && rec.commit == 0 {
			rec.commit = at
		}
	}
}

// PhaseClassStats is one report row: what one class experienced during
// one phase. Latency percentiles cover the transactions submitted in
// the phase that were eventually included in a committed block (commits
// may land in a later phase or the drain window).
type PhaseClassStats struct {
	Phase     string         `json:"phase"`
	Class     string         `json:"class"`
	Submitted int            `json:"submitted"` // admitted + rejected
	Starved   int            `json:"starved,omitempty"`
	Admitted  int            `json:"admitted"`
	Rejected  map[string]int `json:"rejected,omitempty"`
	Committed int            `json:"committed"`
	P50       time.Duration  `json:"p50_ns"`
	P99       time.Duration  `json:"p99_ns"`
	P999      time.Duration  `json:"p999_ns"`
}

// Report is one open-loop run's deterministic result.
type Report struct {
	Name    string `json:"name"`
	Variant string `json:"variant,omitempty"`
	N       int    `json:"n"`
	Seed    int64  `json:"seed"`
	Policy  string `json:"policy"`
	// Rows is phase-major, class-minor.
	Rows []PhaseClassStats `json:"rows"`
	// Height is the observer's committed block count; PoolPending and
	// PoolEvictions are its mempool occupancy and cumulative evictions
	// at the end of the drain window.
	Height        int    `json:"height"`
	PoolPending   int    `json:"pool_pending"`
	PoolEvictions uint64 `json:"pool_evictions"`
}

// report assembles the final Report from the recorder's raw state.
func (r *recorder) report(cfg Config, height, pending int, evictions uint64) *Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	lats := make([][]time.Duration, r.phases*r.classes)
	admitted := make([]int, r.phases*r.classes)
	committed := make([]int, r.phases*r.classes)
	// r.order is submission order; latencies within one (phase, class)
	// cell are therefore appended deterministically. Sorting for the
	// percentile rank is done per cell below.
	for _, id := range r.order {
		rec := r.byID[id]
		c := r.cell(rec.phase, rec.class)
		admitted[c]++
		if rec.commit > 0 {
			committed[c]++
			lats[c] = append(lats[c], rec.commit-rec.submit)
		}
	}
	rep := &Report{
		Name:   cfg.Name,
		N:      cfg.N,
		Seed:   cfg.Seed,
		Policy: describePolicy(cfg.Policy),
	}
	for pi := range cfg.Phases {
		for ci := range cfg.Classes {
			c := r.cell(pi, ci)
			rejects := 0
			for _, n := range r.rejected[c] {
				rejects += n
			}
			sorted := append([]time.Duration(nil), lats[c]...)
			sortDurations(sorted)
			row := PhaseClassStats{
				Phase:     cfg.Phases[pi].Name,
				Class:     cfg.Classes[ci].Name,
				Submitted: admitted[c] + rejects,
				Starved:   r.starvedCnt[pi][ci],
				Admitted:  admitted[c],
				Committed: committed[c],
				P50:       Percentile(sorted, 0.50),
				P99:       Percentile(sorted, 0.99),
				P999:      Percentile(sorted, 0.999),
			}
			if rejects > 0 {
				row.Rejected = r.rejected[c]
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	rep.Height = height
	rep.PoolPending = pending
	rep.PoolEvictions = evictions
	return rep
}

// sortDurations sorts ascending — the percentile contract.
func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// Percentile returns the nearest-rank percentile of an ascending-sorted
// latency slice (q in (0,1]); zero when the slice is empty.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// describePolicy renders an admission policy compactly and
// deterministically for report headers.
func describePolicy(p mempool.Policy) string {
	var parts []string
	if p.MaxTxs > 0 {
		parts = append(parts, fmt.Sprintf("max=%d", p.MaxTxs))
	}
	if p.MaxBytes > 0 {
		parts = append(parts, fmt.Sprintf("maxbytes=%d", p.MaxBytes))
	}
	if p.MaxPerAccount > 0 {
		parts = append(parts, fmt.Sprintf("acct=%d", p.MaxPerAccount))
	}
	if p.RatePerAccount > 0 {
		parts = append(parts, fmt.Sprintf("rate=%d/%s", p.RatePerAccount, p.RateWindow))
	}
	if p.MinFee > 0 {
		parts = append(parts, fmt.Sprintf("minfee=%d", p.MinFee))
	}
	if p.ReplaceBumpPct > 0 {
		parts = append(parts, fmt.Sprintf("bump=%d%%", p.ReplaceBumpPct))
	}
	if p.PriorityOrder {
		parts = append(parts, "prio")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// msCell formats a latency for the fixed-layout table; a dash marks "no
// committed transactions in this cell".
func msCell(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// Format renders the fixed-layout report the goldens pin. Everything in
// it derives from virtual-time measurements, so the bytes are identical
// for a fixed seed in every execution mode.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-loop %s", r.Name)
	if r.Variant != "" {
		fmt.Fprintf(&b, " [%s]", r.Variant)
	}
	fmt.Fprintf(&b, " n=%d seed=%d policy=%s\n", r.N, r.Seed, r.Policy)
	fmt.Fprintf(&b, "%-14s %-10s %7s %7s %7s %7s %9s %9s %9s\n",
		"phase", "class", "sub", "rej", "com", "uncom", "p50ms", "p99ms", "p999ms")
	for _, row := range r.Rows {
		rejects := 0
		for _, n := range row.Rejected {
			rejects += n
		}
		fmt.Fprintf(&b, "%-14s %-10s %7d %7d %7d %7d %9s %9s %9s\n",
			row.Phase, row.Class, row.Submitted, rejects, row.Committed,
			row.Admitted-row.Committed, msCell(row.P50), msCell(row.P99), msCell(row.P999))
	}
	// Reject totals per reason, fixed column order, zero columns elided.
	totals := make(map[string]int)
	starved := 0
	for _, row := range r.Rows {
		for reason, n := range row.Rejected {
			totals[reason] += n
		}
		starved += row.Starved
	}
	var rejParts []string
	for _, reason := range rejectColumns {
		if totals[reason] > 0 {
			rejParts = append(rejParts, fmt.Sprintf("%s=%d", reason, totals[reason]))
		}
	}
	if len(rejParts) > 0 {
		fmt.Fprintf(&b, "rejects: %s\n", strings.Join(rejParts, " "))
	}
	if starved > 0 {
		fmt.Fprintf(&b, "starved: %d\n", starved)
	}
	fmt.Fprintf(&b, "height=%d pool=%d evictions=%d\n",
		r.Height, r.PoolPending, r.PoolEvictions)
	return b.String()
}
