// Package load is the open-loop workload harness: it drives a simulated
// ZLB cluster with a target-rate arrival schedule (transactions arrive
// when the virtual clock says so, never submit-and-wait) and records
// per-transaction submit-to-commit latency, reported as p50/p99/p999 per
// phase and class.
//
// Closed-loop benchmarks (internal/bench's Fig. 3 driver) measure
// throughput but hide queueing: a saturated ingress path simply makes
// the loop slower. The open-loop generator keeps offering transactions
// at the configured rate whether or not the system keeps up, which is
// what exposes mempool admission policy — bounded honest-tail latency
// under a Sybil flood, fee-market priority under squeeze, bounded memory
// during a partition.
//
// Everything is deterministic for a fixed seed: arrivals are scheduled
// on the simulator's virtual clock, commit timestamps come from the
// observing replica's per-event time, and admission decisions depend
// only on the submission sequence (internal/mempool). A campaign report
// is therefore bit-identical across the sequential and
// conservative-parallel simulation modes and across GOMAXPROCS — the
// root determinism suite pins the three registered campaigns as goldens.
package load

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/zeroloss/zlb"
	"github.com/zeroloss/zlb/internal/mempool"
	"github.com/zeroloss/zlb/internal/types"
)

// Class describes one population of accounts sharing a fee level: the
// honest users, the Sybil spammers, the priority payers of a campaign.
type Class struct {
	// Name labels the class in reports.
	Name string
	// Accounts is the number of pre-funded wallets driving this class;
	// arrivals round-robin across them.
	Accounts int
	// Fee is offered per transaction (inputs minus outputs).
	Fee zlb.Amount
	// Amount is the value transferred per transaction (default 10).
	Amount zlb.Amount
}

// Stall describes a partition fault armed for the duration of a phase:
// cross-group traffic between the replica groups is delayed by Extra.
type Stall struct {
	Groups [][]zlb.ReplicaID
	Extra  time.Duration
}

// PhaseSpec is one window of the open-loop schedule.
type PhaseSpec struct {
	// Name labels the phase in reports.
	Name string
	// Duration is the phase's length in virtual time.
	Duration time.Duration
	// Rates is the target arrival rate in tx/s per class, indexed like
	// Config.Classes (missing or zero = the class is silent).
	Rates []float64
	// Stall, when non-nil, partitions the cluster for the phase.
	Stall *Stall
}

// Config parameterizes one open-loop run.
type Config struct {
	// Name labels the run.
	Name string
	// N is the committee size.
	N int
	// Seed drives all randomness.
	Seed int64
	// Classes are the account populations.
	Classes []Class
	// Phases is the schedule, executed in order.
	Phases []PhaseSpec
	// Policy is the mempool admission policy (zero = no admission
	// control, the arrival-order baseline).
	Policy mempool.Policy
	// BatchTxs caps transactions per consensus proposal; small values
	// create queueing pressure at modest rates (default 2000, the
	// cluster default).
	BatchTxs int
	// Tick is the arrival quantization grid (default 25ms): arrivals
	// within one tick submit back-to-back at the tick's virtual time.
	Tick time.Duration
	// Drain is extra virtual time after the last phase for in-flight
	// transactions to commit (default 10s).
	Drain time.Duration
	// MaxBlocks bounds the chain length (default 1<<16 — effectively
	// unbounded for campaign-scale runs).
	MaxBlocks uint64
	// SequentialSim / SequentialCommit select the simulator's event loop
	// and the commit pipeline mode; reports are bit-identical across all
	// four combinations.
	SequentialSim    bool
	SequentialCommit bool
}

// arrival is one scheduled submission.
type arrival struct {
	at    time.Duration
	class int
	idx   int // per-(phase, class) arrival index; account = idx % Accounts
}

// account is one client wallet's transaction chain: after the first
// ledger-backed payment, each transaction spends the previous one's
// change, so an account can keep submitting without waiting for commits.
type account struct {
	w   *zlb.Wallet
	tip []zlb.Input // change of the last admitted tx; nil = use the ledger
}

// sinkAddress is where every generated payment sends its value — a
// fixed address derived from a label, never a wallet.
func sinkAddress() zlb.Address {
	return zlb.Address(types.Hash([]byte("internal/load payment sink")))
}

// Run executes the schedule against a fresh cluster and reports
// per-phase, per-class latency percentiles.
func Run(cfg Config) (*Report, error) {
	if cfg.Tick == 0 {
		cfg.Tick = 25 * time.Millisecond
	}
	if cfg.Drain == 0 {
		cfg.Drain = 10 * time.Second
	}
	if cfg.MaxBlocks == 0 {
		cfg.MaxBlocks = 1 << 16
	}
	totalAccounts := 0
	for i, cl := range cfg.Classes {
		if cl.Accounts <= 0 {
			return nil, fmt.Errorf("load: class %q has no accounts", cl.Name)
		}
		if cl.Amount == 0 {
			cfg.Classes[i].Amount = 10
		}
		totalAccounts += cl.Accounts
	}
	rec := newRecorder(len(cfg.Phases), len(cfg.Classes))
	cluster, err := zlb.NewCluster(zlb.Config{
		N:                cfg.N,
		Seed:             cfg.Seed,
		WalletCount:      totalAccounts,
		MaxBlocks:        cfg.MaxBlocks,
		Mempool:          cfg.Policy,
		BatchTxs:         cfg.BatchTxs,
		SequentialSim:    cfg.SequentialSim,
		SequentialCommit: cfg.SequentialCommit,
		OnCommittedBatch: rec.onCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	defer cluster.Close()

	// Wallets are handed out class by class, in declaration order.
	accounts := make([][]*account, len(cfg.Classes))
	wi := 0
	for ci, cl := range cfg.Classes {
		accounts[ci] = make([]*account, cl.Accounts)
		for i := range accounts[ci] {
			w, err := cluster.WalletFor(wi)
			if err != nil {
				return nil, err
			}
			accounts[ci][i] = &account{w: w}
			wi++
		}
	}
	cluster.Start()

	sink := sinkAddress()
	var elapsed time.Duration
	advanceTo := func(at time.Duration) {
		if at > cluster.Now() {
			cluster.Run(at - cluster.Now())
		}
	}
	for pi, ph := range cfg.Phases {
		start := elapsed
		end := start + ph.Duration
		if ph.Stall != nil {
			cluster.StallPartition(ph.Stall.Groups, ph.Stall.Extra)
		}
		for _, ev := range phaseArrivals(cfg, ph, start, end) {
			advanceTo(ev.at)
			cl := cfg.Classes[ev.class]
			a := accounts[ev.class][ev.idx%cl.Accounts]
			tx, nextTip, err := buildTx(cluster, a, sink, cl.Amount, cl.Fee)
			if err != nil {
				rec.starved(pi, ev.class)
				continue
			}
			verdict := cluster.Submit(tx)
			rec.submitted(pi, ev.class, tx.ID(), ev.at, verdict)
			if verdict == nil {
				// Only an admitted transaction advances the chain; a
				// rejected one is retried from the same tip (fresh nonce)
				// on the account's next arrival.
				a.tip = nextTip
			}
		}
		advanceTo(end)
		if ph.Stall != nil {
			cluster.ClearPartitionStall()
		}
		elapsed = end
	}
	cluster.RunUntilQuiet(elapsed + cfg.Drain)

	pending, _, evictions := cluster.MempoolStats()
	return rec.report(cfg, cluster.Height(), pending, evictions), nil
}

// phaseArrivals expands one phase's target rates into the deterministic
// arrival sequence: per class, count = floor(rate · duration) arrivals
// spaced 1/rate apart, quantized down to the tick grid, merged across
// classes ordered by (time, class, index).
func phaseArrivals(cfg Config, ph PhaseSpec, start, end time.Duration) []arrival {
	var out []arrival
	for ci := range cfg.Classes {
		if ci >= len(ph.Rates) || ph.Rates[ci] <= 0 {
			continue
		}
		rate := ph.Rates[ci]
		count := int(rate * ph.Duration.Seconds())
		gap := time.Duration(float64(time.Second) / rate)
		for j := 0; j < count; j++ {
			at := start + time.Duration(j)*gap
			at = at / cfg.Tick * cfg.Tick // quantize to the tick grid
			if at >= end {
				at = end - cfg.Tick
			}
			if at < start {
				at = start
			}
			out = append(out, arrival{at: at, class: ci, idx: j})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		if out[i].class != out[j].class {
			return out[i].class < out[j].class
		}
		return out[i].idx < out[j].idx
	})
	return out
}

// buildTx creates the account's next chained payment: the first spends
// the wallet's ledger-backed funds, every later one spends the previous
// admitted transaction's change. It returns the transaction and the
// change inputs that become the account's tip if the submission is
// admitted. An exhausted account (no change left, nothing spendable)
// returns an error and the arrival is counted as starved.
func buildTx(cluster *zlb.Cluster, a *account, sink zlb.Address, amount, fee zlb.Amount) (*zlb.Transaction, []zlb.Input, error) {
	if a.tip == nil {
		tx, err := cluster.PayWithFee(a.w, sink, amount, fee)
		if err != nil {
			return nil, nil, err
		}
		return tx, changeInputs(tx, a.w.Address()), nil
	}
	tx, err := a.w.PayWithFee(a.tip, []zlb.Output{{Account: sink, Value: amount}}, fee)
	if err != nil {
		return nil, nil, err
	}
	return tx, changeInputs(tx, a.w.Address()), nil
}

// changeInputs collects the outputs tx returns to addr, as spendable
// inputs for the account's next transaction.
func changeInputs(tx *zlb.Transaction, addr zlb.Address) []zlb.Input {
	var ins []zlb.Input
	for i, out := range tx.Outputs {
		if out.Account == addr {
			ins = append(ins, zlb.Input{
				Prev:  zlb.Outpoint{TxID: tx.ID(), Index: uint32(i)},
				Value: out.Value,
			})
		}
	}
	return ins
}

// rejectReason buckets a Submit verdict into a fixed report column.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, mempool.ErrDuplicate):
		return "dup"
	case errors.Is(err, mempool.ErrCommitted):
		return "committed"
	case errors.Is(err, mempool.ErrFeeTooLow):
		return "fee"
	case errors.Is(err, mempool.ErrRateLimited):
		return "rate"
	case errors.Is(err, mempool.ErrAccountCap):
		return "cap"
	case errors.Is(err, mempool.ErrPoolFull):
		return "full"
	case errors.Is(err, mempool.ErrReplaceUnderpriced):
		return "replace"
	default:
		return "other"
	}
}
