package load

import (
	"fmt"
	"strings"
	"time"

	"github.com/zeroloss/zlb"
	"github.com/zeroloss/zlb/internal/mempool"
)

// Variant is one configuration of a campaign — typically the
// admission-controlled run and its no-admission baseline.
type Variant struct {
	Label  string
	Config Config
}

// Campaign is a named set of open-loop runs compared side by side.
type Campaign struct {
	Name        string
	Description string
	Variants    []Variant
}

// CampaignResult bundles the variant reports of one campaign.
type CampaignResult struct {
	Name        string    `json:"name"`
	Description string    `json:"description"`
	Reports     []*Report `json:"reports"`
}

// Format concatenates the variant reports — the byte layout the goldens
// in testdata/scenario_goldens pin.
func (cr *CampaignResult) Format() string {
	var b strings.Builder
	for i, r := range cr.Reports {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(r.Format())
	}
	return b.String()
}

// RunCampaign executes every variant in order.
func RunCampaign(c Campaign) (*CampaignResult, error) {
	res := &CampaignResult{Name: c.Name, Description: c.Description}
	for _, v := range c.Variants {
		rep, err := Run(v.Config)
		if err != nil {
			return nil, fmt.Errorf("load campaign %s[%s]: %w", c.Name, v.Label, err)
		}
		rep.Variant = v.Label
		res.Reports = append(res.Reports, rep)
	}
	return res, nil
}

// builder registers one campaign constructor.
type builder struct {
	name        string
	description string
	build       func(n int, seed int64) Campaign
}

// builders is the registration-ordered campaign list (like the scenario
// registry, order is part of the golden layout).
var builders = []builder{
	{
		name:        "sybil-spam-flood",
		description: "Sybil accounts flood the ingress at minimum fee while honest users keep paying; admission control must bound the honest tail",
		build:       sybilSpamFlood,
	},
	{
		name:        "fee-squeeze",
		description: "retail traffic over-subscribes a small pool while priority payers bid above it; fee-rate ordering must keep the priority tail flat",
		build:       feeSqueeze,
	},
	{
		name:        "partition-exhaustion",
		description: "a stalled partition fills the bounded pool; eviction sheds the low-fee backlog and the cluster recovers after healing",
		build:       partitionExhaustion,
	},
}

// Names returns the registered campaign names in registration order.
func Names() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b.name
	}
	return out
}

// BuildCampaign constructs a registered campaign for a committee size
// and seed.
func BuildCampaign(name string, n int, seed int64) (Campaign, error) {
	for _, b := range builders {
		if b.name == name {
			c := b.build(n, seed)
			c.Name = name
			c.Description = b.description
			return c, nil
		}
	}
	return Campaign{}, fmt.Errorf("load: unknown campaign %q (have %v)", name, Names())
}

// sybilAdmission is the policy the spam-flood campaign defends with:
// fee-rate ordering plus per-account caps and rate limits. Sybil
// accounts pay the floor fee, so honest transactions always outrank
// them, and no single Sybil account can hold more than a sliver of the
// pool.
func sybilAdmission() mempool.Policy {
	return mempool.Policy{
		MaxTxs:         1200,
		MaxPerAccount:  10,
		RatePerAccount: 15,
		RateWindow:     time.Second,
		MinFee:         1,
		ReplaceBumpPct: 10,
		PriorityOrder:  true,
	}
}

// sybilSpamFlood: honest users at a steady 30 tx/s while 30 Sybil
// accounts flood 600 tx/s at the minimum fee for six seconds. The
// admission variant and the no-admission baseline run the identical
// schedule; the acceptance criterion is the honest class's bounded p99
// under admission while the baseline tail degrades.
func sybilSpamFlood(n int, seed int64) Campaign {
	base := Config{
		Name: "sybil-spam-flood",
		N:    n,
		Seed: seed,
		Classes: []Class{
			{Name: "honest", Accounts: 6, Fee: 20},
			{Name: "sybil", Accounts: 30, Fee: 1},
		},
		Phases: []PhaseSpec{
			{Name: "warmup", Duration: 2 * time.Second, Rates: []float64{30, 0}},
			{Name: "flood", Duration: 6 * time.Second, Rates: []float64{30, 600}},
			{Name: "cooldown", Duration: 2 * time.Second, Rates: []float64{30, 0}},
		},
		// Small proposals (~340 tx/s of commit capacity at this committee
		// size) put the 630 tx/s flood firmly past saturation: the
		// baseline's arrival-order backlog is what degrades the honest
		// tail.
		BatchTxs: 60,
		Drain:    20 * time.Second,
	}
	admission := base
	admission.Policy = sybilAdmission()
	return Campaign{Variants: []Variant{
		{Label: "admission", Config: admission},
		{Label: "baseline", Config: base},
	}}
}

// feeSqueeze: a small bounded pool, retail traffic over-subscribing it
// at fee 2 while a few priority payers bid fee 40. Fee-rate ordering
// plus eviction keeps the priority class's tail flat at the retail
// class's expense.
func feeSqueeze(n int, seed int64) Campaign {
	cfg := Config{
		Name: "fee-squeeze",
		N:    n,
		Seed: seed,
		Classes: []Class{
			{Name: "retail", Accounts: 10, Fee: 2},
			{Name: "priority", Accounts: 4, Fee: 40},
		},
		Phases: []PhaseSpec{
			{Name: "calm", Duration: 2 * time.Second, Rates: []float64{40, 8}},
			{Name: "squeeze", Duration: 6 * time.Second, Rates: []float64{300, 40}},
			{Name: "settle", Duration: 2 * time.Second, Rates: []float64{40, 8}},
		},
		Policy: mempool.Policy{
			MaxTxs:         600,
			MinFee:         1,
			ReplaceBumpPct: 10,
			PriorityOrder:  true,
		},
		// ~220 tx/s of commit capacity against 340 tx/s offered during
		// the squeeze: the bounded pool must arbitrate by fee rate.
		BatchTxs: 40,
		Drain:    20 * time.Second,
	}
	return Campaign{Variants: []Variant{{Label: "admission", Config: cfg}}}
}

// partitionExhaustion: steady mixed-fee traffic, then a partition stalls
// commits for four seconds while arrivals keep coming — the bounded pool
// fills, evicts the bulk class's low-fee backlog in favor of the vip
// class, and drains after the partition heals.
func partitionExhaustion(n int, seed int64) Campaign {
	half := n/2 + 1
	groups := [][]zlb.ReplicaID{{}, {}}
	for id := 1; id <= n; id++ {
		g := 0
		if id > half {
			g = 1
		}
		groups[g] = append(groups[g], zlb.ReplicaID(id))
	}
	stall := &Stall{Groups: groups, Extra: 2 * time.Second}
	cfg := Config{
		Name: "partition-exhaustion",
		N:    n,
		Seed: seed,
		Classes: []Class{
			{Name: "bulk", Accounts: 8, Fee: 2},
			{Name: "vip", Accounts: 3, Fee: 30},
		},
		Phases: []PhaseSpec{
			{Name: "steady", Duration: 2 * time.Second, Rates: []float64{80, 10}},
			{Name: "partitioned", Duration: 4 * time.Second, Rates: []float64{80, 10}, Stall: stall},
			{Name: "healed", Duration: 4 * time.Second, Rates: []float64{80, 10}},
		},
		Policy: mempool.Policy{
			MaxTxs:         300,
			MinFee:         1,
			ReplaceBumpPct: 10,
			PriorityOrder:  true,
		},
		BatchTxs: 150,
		Drain:    20 * time.Second,
	}
	return Campaign{Variants: []Variant{{Label: "admission", Config: cfg}}}
}
