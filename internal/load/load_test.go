package load

import (
	"testing"
	"time"

	"github.com/zeroloss/zlb/internal/mempool"
)

// smallConfig is a fast two-phase run for unit tests.
func smallConfig(policy mempool.Policy) Config {
	return Config{
		Name: "unit",
		N:    4,
		Seed: 7,
		Classes: []Class{
			{Name: "a", Accounts: 2, Fee: 5},
			{Name: "b", Accounts: 2, Fee: 1},
		},
		Phases: []PhaseSpec{
			{Name: "p1", Duration: time.Second, Rates: []float64{20, 20}},
			{Name: "p2", Duration: time.Second, Rates: []float64{20, 0}},
		},
		Policy:   policy,
		BatchTxs: 50,
		Drain:    10 * time.Second,
	}
}

// TestRunDeterministic pins that two identical runs produce
// byte-identical reports and that the basic accounting adds up.
func TestRunDeterministic(t *testing.T) {
	policy := mempool.Policy{MaxTxs: 100, PriorityOrder: true, MinFee: 1}
	r1, err := Run(smallConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(smallConfig(policy))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Format() != r2.Format() {
		t.Fatalf("same config, different reports:\n--- run 1\n%s\n--- run 2\n%s", r1.Format(), r2.Format())
	}
	total := 0
	for _, row := range r1.Rows {
		rejects := 0
		for _, n := range row.Rejected {
			rejects += n
		}
		if row.Admitted+rejects != row.Submitted {
			t.Errorf("%s/%s: admitted %d + rejected %d != submitted %d",
				row.Phase, row.Class, row.Admitted, rejects, row.Submitted)
		}
		if row.Committed > row.Admitted {
			t.Errorf("%s/%s: committed %d > admitted %d",
				row.Phase, row.Class, row.Committed, row.Admitted)
		}
		total += row.Committed
	}
	if total == 0 {
		t.Fatal("no transactions committed at all")
	}
	if r1.Height == 0 {
		t.Fatal("no blocks committed")
	}
	for _, row := range r1.Rows {
		if row.Committed > 0 && (row.P50 <= 0 || row.P99 < row.P50 || row.P999 < row.P99) {
			t.Errorf("%s/%s: implausible percentiles p50=%v p99=%v p999=%v",
				row.Phase, row.Class, row.P50, row.P99, row.P999)
		}
	}
}

// TestPercentileNearestRank pins the nearest-rank definition.
func TestPercentileNearestRank(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{0.999, 100 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	} {
		if got := Percentile(ds, tc.q); got != tc.want {
			t.Errorf("p%g of 1..100ms: got %v, want %v", tc.q*100, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty slice: got %v, want 0", got)
	}
	one := []time.Duration{42 * time.Millisecond}
	if got := Percentile(one, 0.5); got != 42*time.Millisecond {
		t.Errorf("single element: got %v", got)
	}
}

// TestCampaignRegistry checks every registered campaign builds and the
// registry rejects unknown names.
func TestCampaignRegistry(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("registered campaigns: %v, want 3", names)
	}
	for _, name := range names {
		c, err := BuildCampaign(name, 9, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Variants) == 0 {
			t.Errorf("%s: no variants", name)
		}
		for _, v := range c.Variants {
			if v.Config.N != 9 || v.Config.Seed != 42 {
				t.Errorf("%s[%s]: n/seed not threaded through", name, v.Label)
			}
		}
	}
	if _, err := BuildCampaign("nope", 9, 42); err == nil {
		t.Error("unknown campaign must error")
	}
}
