package pipeline

import (
	"sync/atomic"
	"testing"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

func TestPoolMapCoversAllIndices(t *testing.T) {
	pools := map[string]*Pool{
		"shared":     Shared(),
		"sequential": nil,
		"two":        NewPool(2),
	}
	for name, p := range pools {
		t.Run(name, func(t *testing.T) {
			const n = 1000
			var hits [n]int32
			p.Map(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i := range hits {
				if hits[i] != 1 {
					t.Fatalf("index %d ran %d times, want 1", i, hits[i])
				}
			}
		})
	}
}

// TestPoolMapNested guards against deadlock when a worker task itself
// fans out: the caller always participates, so Map completes even when
// every worker is busy.
func TestPoolMapNested(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int32
	p.Map(8, func(int) {
		p.Map(8, func(int) { total.Add(1) })
	})
	if got := total.Load(); got != 64 {
		t.Fatalf("nested map ran %d tasks, want 64", got)
	}
}

func TestTryDoDropsWhenSequential(t *testing.T) {
	var p *Pool
	if p.TryDo(func() { t.Fatal("nil pool ran a task") }) {
		t.Fatal("nil pool accepted a task")
	}
}

func clusterFixture(t *testing.T, n int) ([]*crypto.Signer, accountability.Statement, *accountability.Certificate) {
	t.Helper()
	signers, _, err := crypto.GenerateCluster(crypto.SchemeSim, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	stmt := accountability.Statement{
		Context:  accountability.CtxMain,
		Kind:     accountability.KindAux,
		Instance: 1,
		Slot:     3,
		Round:    0,
		Value:    accountability.BoolDigest(true),
	}
	sigs := make([]accountability.Signed, 0, n)
	for _, s := range signers {
		signed, err := accountability.SignStatement(s, stmt)
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, signed)
	}
	cert, err := accountability.NewCertificate(stmt, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return signers, stmt, cert
}

// TestVerifyCertificateMatchesInline pins the pipelined verdict (cached,
// fanned out) to accountability.(*Certificate).Verify across valid,
// forged and sub-quorum certificates, and across repeat calls that hit
// the cache.
func TestVerifyCertificateMatchesInline(t *testing.T) {
	signers, stmt, cert := clusterFixture(t, 12)
	v := NewVerifier(Shared())

	check := func(name string, c *accountability.Certificate, n int, member func(types.ReplicaID) bool) {
		t.Helper()
		want := c.Verify(signers[0], n, member)
		for i := 0; i < 2; i++ { // second round hits the verdict cache
			got := v.VerifyCertificate(c, signers[0], n, member)
			if (want == nil) != (got == nil) {
				t.Errorf("%s (round %d): inline err=%v, pipelined err=%v", name, i, want, got)
			}
		}
	}

	check("valid", cert, 12, nil)
	check("below quorum n", cert, 19, nil)
	check("member filter excludes", cert, 12, func(id types.ReplicaID) bool { return id <= 2 })

	forged := &accountability.Certificate{Stmt: stmt, Sigs: append([]accountability.Signed{}, cert.Sigs...)}
	forged.Sigs[5].Sig = append([]byte{}, forged.Sigs[5].Sig...)
	forged.Sigs[5].Sig[0] ^= 0xff
	check("forged signature", forged, 12, nil)

	dup := &accountability.Certificate{Stmt: stmt, Sigs: append([]accountability.Signed{}, cert.Sigs...)}
	dup.Sigs[1] = dup.Sigs[0]
	check("duplicate signer", dup, 12, nil)
}

func TestSpeculateSettlesVerdict(t *testing.T) {
	signers, _, cert := clusterFixture(t, 10)
	v := NewVerifier(Shared())
	v.Speculate(cert, signers[0])
	if err := v.VerifyCertificate(cert, signers[0], 10, nil); err != nil {
		t.Fatalf("speculated certificate rejected: %v", err)
	}
}

func TestVerifySignedBatch(t *testing.T) {
	signers, _, cert := clusterFixture(t, 10)
	v := NewVerifier(Shared())
	if i := v.VerifySignedBatch(cert.Sigs, signers[0]); i != -1 {
		t.Fatalf("valid batch flagged index %d", i)
	}
	bad := append([]accountability.Signed{}, cert.Sigs...)
	bad[7].Sig = append([]byte{}, bad[7].Sig...)
	bad[7].Sig[0] ^= 1
	if i := v.VerifySignedBatch(bad, signers[0]); i != 7 {
		t.Fatalf("forged index reported as %d, want 7", i)
	}
	var nilV *Verifier
	if i := nilV.VerifySignedBatch(bad, signers[0]); i != 7 {
		t.Fatalf("nil verifier reported %d, want 7", i)
	}
}

func paymentTx(t *testing.T, seed int64) (*utxo.Transaction, crypto.Scheme) {
	t.Helper()
	reg := crypto.NewRegistry(crypto.SchemeEd25519)
	scheme, err := crypto.NewScheme(crypto.SchemeEd25519, reg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := scheme.GenerateKey(crypto.NewDeterministicRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := utxo.NewWallet(kp, scheme)
	tx, err := w.Pay(
		[]utxo.Input{{Prev: utxo.Outpoint{TxID: types.Hash([]byte("prev")), Index: 0}, Value: 100}},
		[]utxo.Output{{Account: w.Address(), Value: 100}})
	if err != nil {
		t.Fatal(err)
	}
	return tx, scheme
}

// TestPreverifyPublishesVerdicts checks the speculative path end to end:
// after Preverify the commit-time VerifySig returns instantly with the
// same verdict the inline check computes, for valid and forged
// transactions alike.
func TestPreverifyPublishesVerdicts(t *testing.T) {
	good, scheme := paymentTx(t, 11)
	bad, _ := paymentTx(t, 12)
	bad.Sig = append([]byte{}, bad.Sig...)
	bad.Sig[0] ^= 0x80
	bad.Invalidate()

	tv := NewTxVerifier(Shared(), scheme)
	tv.Preverify([]*utxo.Transaction{good, bad})
	if err := good.VerifySig(scheme); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
	if err := bad.VerifySig(scheme); err == nil {
		t.Fatal("forged tx accepted")
	}
}

func TestSpeculateBatchWarmsCache(t *testing.T) {
	tx, scheme := paymentTx(t, 13)
	payload, err := wire.EncodeBatch([]*utxo.Transaction{tx})
	if err != nil {
		t.Fatal(err)
	}
	cache := wire.NewBatchCache(0)
	tv := NewTxVerifier(Shared(), scheme)
	tv.SpeculateBatch(payload, cache)
	txs, err := cache.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 {
		t.Fatalf("decoded %d txs, want 1", len(txs))
	}
	if err := txs[0].VerifySig(scheme); err != nil {
		t.Fatalf("speculated batch tx rejected: %v", err)
	}
	// Garbage payloads must not poison anything.
	tv.SpeculateBatch([]byte("not a batch"), cache)
}
