// Package pipeline is the multi-core commit pipeline: a bounded worker
// pool plus the verification stages that run on it. The discrete-event
// simulator and the TCP node both process protocol events on a single
// goroutine; everything CPU-heavy on the commit path — certificate
// signature checks, transaction signature checks, batch decoding, UTXO
// application — is a pure function of the message bytes and the PKI, so
// it can be fanned out across cores (and speculatively started before
// consensus decides) without changing a single protocol decision.
//
// Determinism contract: the pipeline never touches event ordering or the
// virtual clock. Workers only compute verdicts that are pure functions of
// their inputs, fan-in order is by task index, and every cached verdict
// is exactly what the sequential code would have computed. Forcing
// sequential mode (Options.Sequential, zlb.Config.SequentialCommit)
// executes the same code inline and must produce bit-identical results —
// the determinism tests pin this.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. A nil *Pool is valid and executes
// everything inline on the caller (sequential mode).
type Pool struct {
	workers int
	tasks   chan func()
}

// NewPool starts a pool with the given number of workers; workers <= 0
// sizes it to runtime.GOMAXPROCS(0). The workers live for the life of the
// process — use Shared instead of creating pools per cluster.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), 4*workers),
	}
	for i := 0; i < workers; i++ {
		go func() {
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, created on first use with
// GOMAXPROCS workers. Every cluster shares it: worker goroutines are a
// process resource, while verdict caches (Verifier, TxVerifier) stay
// per-cluster.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(0) })
	return sharedPool
}

// Workers returns the pool size (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// TryDo submits fn for asynchronous execution. It reports false — and
// does not run fn — when the pool is nil (sequential mode) or saturated:
// speculative work is dropped rather than blocking the event loop, and
// the verdict is simply computed on demand later.
func (p *Pool) TryDo(fn func()) bool {
	if p == nil {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Map runs fn(0..n-1) and returns when all calls completed. Work is
// claimed from a shared atomic index, the caller participates (so Map
// never deadlocks on a saturated pool), and fan-in is deterministic: Map
// returns only after every index ran, so callers reduce results by index
// regardless of which worker produced them. A nil pool runs inline in
// index order.
//
// Completion is tracked per index, not per helper task: the caller waits
// only until every fn call has finished, never for a queued helper to be
// scheduled. Map is therefore safe to call from pool workers themselves
// (the parallel simulator runs event handlers on the pool, and those
// handlers fan out nested verification Maps): a helper task that never
// runs — because every worker is busy inside such a nested Map — can no
// longer deadlock the fan-in, since whoever finishes the last index
// releases the waiter, and in-progress indices are by definition owned
// by live goroutines.
func (p *Pool) Map(n int, fn func(int)) {
	if p == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next, completed atomic.Int64
	done := make(chan struct{})
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
			if completed.Add(1) == int64(n) {
				close(done)
			}
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	submitted := 0
	for submitted < helpers {
		select {
		case p.tasks <- run:
			submitted++
			continue
		default:
		}
		break // pool saturated; the caller and prior helpers drain the rest
	}
	run()
	<-done
}
