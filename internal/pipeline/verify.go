package pipeline

import (
	"sync"
	"sync/atomic"

	"github.com/zeroloss/zlb/internal/accountability"
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/types"
)

// certSigsParallelMin is the signature count below which a certificate is
// checked inline: fanning out a handful of MAC checks costs more in
// scheduling than it saves.
const certSigsParallelMin = 8

// maxCachedCerts bounds the verdict cache; past it the map is reset
// wholesale. Waiters hold their entry pointer directly, so eviction only
// loses memoization — it can never block anyone.
const maxCachedCerts = 1 << 14

// certVerdict is the cached outcome of a certificate's structure and
// signature checks. done is closed when err is final.
type certVerdict struct {
	// claimed serializes the verify-and-memoize step: whoever wins the
	// claim computes the verdict and closes done; everyone else waits.
	// Speculated entries are claimed only when a worker actually starts
	// the check — a demand-side caller that arrives first steals the
	// work instead of blocking on a task still sitting in the pool
	// queue. That steal is what makes the verifier deadlock-free when
	// the parallel simulator runs event handlers on the pool itself:
	// every worker blocked in VerifyCertificate would otherwise wait for
	// queue capacity that only those workers can free.
	claimed atomic.Bool
	done    chan struct{}
	err     error
}

// Verifier checks certificates on the worker pool and memoizes verdicts
// by certificate identity. One Verifier serves one deployment (a
// simulated cluster or one TCP node process): in both, a certificate
// multicast to n replicas arrives as n references to the same immutable
// object, so the first check settles it for everyone — the n−1 repeat
// verifications that used to dominate the commit path become map hits.
//
// Only the pure part of the verdict is cached (statement mismatches,
// duplicate signers, signature validity). Quorum is evaluated per call:
// it depends on the caller's committee size and membership filter, which
// legitimately differ across epochs.
type Verifier struct {
	pool *Pool

	mu       sync.Mutex
	verdicts map[*accountability.Certificate]*certVerdict
}

// NewVerifier creates a Verifier running on pool (nil = inline/sequential,
// with the verdict cache still active).
func NewVerifier(pool *Pool) *Verifier {
	return &Verifier{
		pool:     pool,
		verdicts: make(map[*accountability.Certificate]*certVerdict),
	}
}

// Pool exposes the verifier's worker pool (nil in sequential mode) so
// callers can fan out sibling work — e.g. the per-slot payload hashing of
// a decision audit.
func (v *Verifier) Pool() *Pool {
	if v == nil {
		return nil
	}
	return v.pool
}

// Speculate starts verifying cert in the background so that the verdict
// is (probably) settled by the time a receiver needs it. The sender of a
// DECIDE multicast calls this right before handing the message to the
// network: the checks overlap with every event the loop processes until
// the first delivery. Dropped silently when the pool is saturated or
// sequential — the verdict is then computed on first demand.
func (v *Verifier) Speculate(cert *accountability.Certificate, signer *crypto.Signer) {
	if v == nil || cert == nil || v.pool == nil {
		return
	}
	v.mu.Lock()
	if _, seen := v.verdicts[cert]; seen {
		v.mu.Unlock()
		return
	}
	c := &certVerdict{done: make(chan struct{})}
	if v.pool.TryDo(func() {
		if c.claimed.CompareAndSwap(false, true) {
			c.err = v.check(cert, signer)
			close(c.done)
		}
	}) {
		v.evictIfFull()
		v.verdicts[cert] = c
	}
	v.mu.Unlock()
}

// VerifyCertificate checks structure, signer distinctness, signatures and
// the quorum among members accepted by the membership test (nil accepts
// all) for committee size n — the same contract as
// accountability.(*Certificate).Verify, with the pure part of the verdict
// cached across callers and the signature checks fanned out across the
// pool.
func (v *Verifier) VerifyCertificate(cert *accountability.Certificate, signer *crypto.Signer, n int, member func(types.ReplicaID) bool) error {
	if v == nil {
		return cert.Verify(signer, n, member)
	}
	if err := v.VerifyCertSigs(cert, signer); err != nil {
		return err
	}
	if cert.SignerCount(member) < types.Quorum(n) {
		return accountability.ErrCertQuorum
	}
	return nil
}

// VerifyCertSigs checks the membership-independent part of the
// certificate — the same contract as
// accountability.(*Certificate).VerifySigs — with the verdict cached
// across callers. Callers whose quorum rule differs from
// Certificate.Verify's (ready certificates count 2t+1, not 2n/3) use this
// plus their own SignerCount threshold.
func (v *Verifier) VerifyCertSigs(cert *accountability.Certificate, signer *crypto.Signer) error {
	if v == nil {
		return cert.VerifySigs(signer)
	}
	v.mu.Lock()
	c, ok := v.verdicts[cert]
	if !ok {
		c = &certVerdict{done: make(chan struct{})}
		v.evictIfFull()
		v.verdicts[cert] = c
	}
	v.mu.Unlock()
	if c.claimed.CompareAndSwap(false, true) {
		// First to claim (or the speculated task has not started yet):
		// compute here. The verdict is a pure function of the
		// certificate, so stealing queued speculation changes nothing
		// but latency.
		c.err = v.check(cert, signer)
		close(c.done)
	} else {
		// Claimed by a goroutine that is actively computing (never by a
		// queued task), so this wait always makes progress.
		<-c.done
	}
	return c.err
}

// evictIfFull resets the verdict map when it grows past the bound. Caller
// holds v.mu.
func (v *Verifier) evictIfFull() {
	if len(v.verdicts) >= maxCachedCerts {
		v.verdicts = make(map[*accountability.Certificate]*certVerdict)
	}
}

// check computes the pure verdict: statement mismatches, duplicate
// signers, and every signature — fanned out across the pool for large
// certificates, reduced in index order so the reported error is the one
// sequential verification would return. Aggregate-form certificates are
// one constant-size check, so they verify inline — no fan-out to pay for.
func (v *Verifier) check(cert *accountability.Certificate, signer *crypto.Signer) error {
	if cert.IsAggregate() {
		return cert.VerifySigs(signer)
	}
	digest := cert.Stmt.Digest()
	seen := types.NewReplicaSet()
	for i := range cert.Sigs {
		if cert.Sigs[i].Stmt != cert.Stmt {
			return accountability.ErrCertMismatch
		}
		if !seen.Add(cert.Sigs[i].Signer) {
			return accountability.ErrCertDuplicate
		}
	}
	nsigs := len(cert.Sigs)
	if v.pool == nil || nsigs < certSigsParallelMin {
		for i := range cert.Sigs {
			if !signer.Verify(cert.Sigs[i].Signer, digest, cert.Sigs[i].Sig) {
				return accountability.ErrCertSignature
			}
		}
		return nil
	}
	ok := make([]bool, nsigs)
	v.pool.Map(nsigs, func(i int) {
		ok[i] = signer.Verify(cert.Sigs[i].Signer, digest, cert.Sigs[i].Sig)
	})
	for i := range ok {
		if !ok[i] {
			return accountability.ErrCertSignature
		}
	}
	return nil
}

// VerifySignedBatch checks a slice of signed statements, fanned out
// across the pool, and returns the index of the first invalid one (-1
// when all verify). Fan-in is by index, so the result is identical to a
// sequential scan. Used for ready-certificate audits whose quorum rules
// differ from Certificate.Verify's.
func (v *Verifier) VerifySignedBatch(sigs []accountability.Signed, signer *crypto.Signer) int {
	if v == nil || v.pool == nil || len(sigs) < certSigsParallelMin {
		if i, ok := batchVerify(sigs, signer); ok {
			return i
		}
		for i := range sigs {
			if !sigs[i].Verify(signer) {
				return i
			}
		}
		return -1
	}
	ok := make([]bool, len(sigs))
	v.pool.Map(len(sigs), func(i int) {
		ok[i] = sigs[i].Verify(signer)
	})
	for i := range ok {
		if !ok[i] {
			return i
		}
	}
	return -1
}

// batchVerify routes a batch of signed statements covering one shared
// statement through the scheme's crypto.BatchVerifier capability, which
// amortizes the per-signature setup (one digest, one registry pass). It
// reports false when the scheme lacks the capability or the statements
// differ, in which case the caller scans sequentially.
func batchVerify(sigs []accountability.Signed, signer *crypto.Signer) (firstBad int, handled bool) {
	if len(sigs) == 0 {
		return -1, true
	}
	bv, ok := signer.Scheme().(crypto.BatchVerifier)
	if !ok {
		return 0, false
	}
	for i := 1; i < len(sigs); i++ {
		if sigs[i].Stmt != sigs[0].Stmt {
			return 0, false
		}
	}
	ids := make([]types.ReplicaID, len(sigs))
	raw := make([]crypto.Signature, len(sigs))
	for i, s := range sigs {
		ids[i] = s.Signer
		raw[i] = s.Sig
	}
	return bv.VerifyBatch(signer.Registry(), ids, sigs[0].Stmt.Digest(), raw), true
}
