package pipeline

import (
	"github.com/zeroloss/zlb/internal/crypto"
	"github.com/zeroloss/zlb/internal/utxo"
	"github.com/zeroloss/zlb/internal/wire"
)

// preverifyChunk is how many transactions one speculative verification
// task claims: big enough to amortize scheduling, small enough that a
// batch spreads across all workers.
const preverifyChunk = 64

// TxVerifier speculatively verifies transaction signatures on the worker
// pool, ahead of the block commit that needs them. Verdicts are published
// through each transaction's atomic signature-verdict slot
// (utxo.(*Transaction).VerifySig), so by the time consensus decides a
// batch, committing it re-checks nothing: the deterministic outcome was
// computed while the protocol was still voting.
//
// One TxVerifier serves one deployment and one signature scheme; a
// transaction object must only ever be verified under that scheme (the
// verdict is memoized on the transaction).
type TxVerifier struct {
	pool   *Pool
	scheme crypto.Scheme
}

// NewTxVerifier creates a TxVerifier. pool may be nil (sequential mode):
// Preverify and SpeculateBatch become no-ops and all verification happens
// inline at commit time, bit-identically.
func NewTxVerifier(pool *Pool, scheme crypto.Scheme) *TxVerifier {
	return &TxVerifier{pool: pool, scheme: scheme}
}

// Pool exposes the underlying worker pool (nil in sequential mode).
func (t *TxVerifier) Pool() *Pool {
	if t == nil {
		return nil
	}
	return t.pool
}

// Preverify schedules background signature verification for txs. Dropped
// (not queued) chunks cost nothing: the commit path computes missing
// verdicts on demand. Safe to call from the event loop; the transactions
// may be shared with other replicas of the cluster.
func (t *TxVerifier) Preverify(txs []*utxo.Transaction) {
	if t == nil || t.pool == nil || t.scheme == nil {
		return
	}
	for start := 0; start < len(txs); start += preverifyChunk {
		end := start + preverifyChunk
		if end > len(txs) {
			end = len(txs)
		}
		chunk := txs[start:end]
		t.pool.TryDo(func() {
			for _, tx := range chunk {
				_ = tx.VerifySig(t.scheme)
			}
		})
	}
}

// SpeculateBatch decodes a proposal payload through the shared batch
// cache and pre-verifies its transactions, entirely off the event loop.
// Call it when a proposal is delivered by the reliable broadcast — while
// the binary consensus is still deciding whether the batch commits. The
// payload must be immutable (consensus payloads are); decode errors are
// ignored here and resurface, deterministically, wherever the payload is
// decoded for real.
func (t *TxVerifier) SpeculateBatch(payload []byte, cache *wire.BatchCache) {
	if t == nil || t.pool == nil || cache == nil {
		return
	}
	t.pool.TryDo(func() {
		txs, err := cache.Decode(payload)
		if err != nil {
			return
		}
		for _, tx := range txs {
			_ = tx.VerifySig(t.scheme)
		}
	})
}
