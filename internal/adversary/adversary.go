// Package adversary orchestrates the paper's two coalition attacks (§B):
//
//   - the reliable broadcast attack: deceitful proposers send different
//     proposals to different partitions of honest replicas, and deceitful
//     echoers back each partition's variant, so distinct proposals are
//     delivered — and decided — at the same slot;
//   - the binary consensus attack: deceitful replicas withhold their
//     proposal from all but one partition and then vote both binary values
//     (signed AUX equivocation) so that one partition decides 1 while the
//     others decide 0 for the same slot.
//
// A Coalition is shared, in-process state standing in for the attackers'
// out-of-band coordination channel. The deceitful replicas communicate
// normally with every partition (paper §5.2); only honest-to-honest links
// across partitions carry the injected delay — use PartitionOf with
// latency.PartitionOverlay to reproduce that network.
package adversary

import (
	"fmt"
	"sync"

	"github.com/zeroloss/zlb/internal/bincon"
	"github.com/zeroloss/zlb/internal/rbc"
	"github.com/zeroloss/zlb/internal/sbc"
	"github.com/zeroloss/zlb/internal/types"
)

// Attack selects the coalition strategy.
type Attack int

// The attack strategies of §B.
const (
	// AttackNone makes the coalition behave honestly.
	AttackNone Attack = iota + 1
	// AttackBinary is the binary consensus attack.
	AttackBinary
	// AttackRBCast is the reliable broadcast attack.
	AttackRBCast
)

// String implements fmt.Stringer.
func (a Attack) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackBinary:
		return "binary-consensus"
	case AttackRBCast:
		return "reliable-broadcast"
	default:
		return fmt.Sprintf("attack(%d)", int(a))
	}
}

// DeceitfulCount is d = ⌈5n/9⌉ − 1, the coalition size used throughout
// the paper's attack experiments (Fig. 4–6): a majority, yet one short
// of the 5n/9 confirmation bound.
func DeceitfulCount(n int) int { return (5*n+8)/9 - 1 }

// MaxBranches returns the maximum number of fork branches a deceitful
// coalition can sustain: a ≤ (n−(f−q)) / (⌈2n/3⌉−(f−q)) (paper §B, citing
// Zeno's conflicting-histories bound). It returns 1 when the coalition is
// too small to fork.
func MaxBranches(n, deceitful int) int {
	den := types.Quorum(n) - deceitful
	if den <= 0 {
		// The coalition alone reaches quorum; branches are bounded only by
		// the honest partition count (one honest replica per branch).
		return n - deceitful
	}
	a := (n - deceitful) / den
	if a < 1 {
		return 1
	}
	return a
}

// Coalition is the shared attack plan: who is deceitful, how honest
// replicas are partitioned, and (for the rbcast attack) which proposal
// variant belongs to which partition.
type Coalition struct {
	Attack     Attack
	Deceitful  []types.ReplicaID
	Partitions [][]types.ReplicaID

	deceitfulSet map[types.ReplicaID]bool
	partOf       map[types.ReplicaID]int
	// mu guards digestPartition: with the parallel simulator, a deceitful
	// proposer registers variants (inside its BatchSource callback) while
	// deceitful echoers of other slots consult them concurrently. The
	// values read are still deterministic — an echoer can only look up
	// digests it has already received in messages, which were registered
	// at least one lookahead window earlier — the lock only protects the
	// map internals.
	mu sync.RWMutex
	// digestPartition maps an rbcast proposal-variant digest to its target
	// partition: the attackers' out-of-band coordination.
	digestPartition map[types.Digest]int
	// targetPart maps a deceitful proposer to the partition that should
	// decide its withheld/forked proposal. Read-only after construction.
	targetPart map[types.ReplicaID]int
}

// NewCoalition builds the attack plan: the first `deceitful` committee
// members (by ID order) form the coalition and the remaining honest
// replicas are split round-robin into `branches` partitions. Branches is
// clamped to MaxBranches and to the honest count.
func NewCoalition(attack Attack, members []types.ReplicaID, deceitful, branches int) *Coalition {
	sorted := make([]types.ReplicaID, len(members))
	copy(sorted, members)
	types.SortReplicas(sorted)
	if deceitful > len(sorted) {
		deceitful = len(sorted)
	}
	c := &Coalition{
		Attack:          attack,
		Deceitful:       sorted[:deceitful],
		deceitfulSet:    make(map[types.ReplicaID]bool, deceitful),
		partOf:          make(map[types.ReplicaID]int),
		digestPartition: make(map[types.Digest]int),
		targetPart:      make(map[types.ReplicaID]int),
	}
	for _, id := range c.Deceitful {
		c.deceitfulSet[id] = true
	}
	honest := sorted[deceitful:]
	if max := MaxBranches(len(sorted), deceitful); branches > max {
		branches = max
	}
	if branches > len(honest) {
		branches = len(honest)
	}
	if branches < 1 {
		branches = 1
	}
	c.Partitions = make([][]types.ReplicaID, branches)
	for i, id := range honest {
		p := i % branches
		c.Partitions[p] = append(c.Partitions[p], id)
		c.partOf[id] = p
	}
	for i, id := range c.Deceitful {
		c.targetPart[id] = i % branches
	}
	return c
}

// IsDeceitful reports coalition membership.
func (c *Coalition) IsDeceitful(id types.ReplicaID) bool { return c.deceitfulSet[id] }

// PartitionOf returns the honest partition of id, or -1 for deceitful or
// unknown replicas — the shape latency.PartitionOverlay expects, so
// deceitful replicas talk to every partition at full speed.
func (c *Coalition) PartitionOf(id types.ReplicaID) int {
	if p, ok := c.partOf[id]; ok {
		return p
	}
	return -1
}

// Branches returns the number of honest partitions.
func (c *Coalition) Branches() int { return len(c.Partitions) }

// RegisterVariant records that an rbcast proposal variant (by digest)
// targets a partition; the equivocating broadcaster calls it when it
// builds its per-partition payloads, and deceitful echoers use it to echo
// the right digest to the right partition.
func (c *Coalition) RegisterVariant(d types.Digest, partition int) {
	c.mu.Lock()
	c.digestPartition[d] = partition
	c.mu.Unlock()
}

// variantPartition looks up a registered variant's target partition.
func (c *Coalition) variantPartition(d types.Digest) (int, bool) {
	c.mu.RLock()
	p, ok := c.digestPartition[d]
	c.mu.RUnlock()
	return p, ok
}

// VariantPayload derives the per-partition payload variant for the rbcast
// attack: the base payload with a partition tag appended, registered for
// echo coordination. Applications needing semantically conflicting
// variants (double-spending transaction batches) build their own variants
// and call RegisterVariant directly.
func (c *Coalition) VariantPayload(base []byte, partition int) []byte {
	v := make([]byte, 0, len(base)+1)
	v = append(v, base...)
	v = append(v, byte(partition))
	c.RegisterVariant(types.Hash(v), partition)
	return v
}

// SBCAdversary returns the per-replica attack wiring for the main-chain
// SBC instances, or nil when self is not in the coalition (or no attack).
func (c *Coalition) SBCAdversary(self types.ReplicaID) *sbc.Adversary {
	if !c.deceitfulSet[self] || c.Attack == AttackNone {
		return nil
	}
	switch c.Attack {
	case AttackBinary:
		return &sbc.Adversary{
			// The reliable broadcast itself is honest: every partition
			// receives every proposal, so each partition can commit its
			// superblock without cross-partition traffic. Only the binary
			// votes are split.
			Bin: func(slot types.ReplicaID) *bincon.Equivocator {
				return c.binaryAttackBin(self, slot)
			},
		}
	case AttackRBCast:
		return &sbc.Adversary{
			RBC: c.rbcastAttackRBC(self),
			RBCFor: func(slot types.ReplicaID) *rbc.Equivocator {
				if !c.deceitfulSet[slot] {
					return nil
				}
				// Echo each partition's variant toward it for every
				// coalition slot; variant digests are learned from the
				// echoes observed on the wire.
				return &rbc.Equivocator{EchoDigestFor: c.echoForPartition}
			},
			Bin: func(types.ReplicaID) *bincon.Equivocator {
				return &bincon.Equivocator{SuppressDecide: true}
			},
		}
	default:
		return nil
	}
}

// binaryAttackBin splits the signed votes on slots owned by coalition
// members (paper §B attack 2): the slot owner's target partition is
// pushed toward 1, every other partition toward 0. The coalition's
// EST(0) messages alone exceed the t+1 relay threshold, so the victim
// partitions amplify 0 into their bin_values and vote AUX(0) before the
// target partition's 1-votes can cross the injected delay. Slots owned by
// honest replicas are voted honestly, but DECIDE forwarding is suppressed
// everywhere so the coalition never carries incriminating certificates
// across partitions itself.
func (c *Coalition) binaryAttackBin(self, slot types.ReplicaID) *bincon.Equivocator {
	if !c.deceitfulSet[slot] {
		return &bincon.Equivocator{SuppressDecide: true}
	}
	target := c.targetPart[slot]
	valueFor := func(to types.ReplicaID) bool {
		if c.deceitfulSet[to] {
			return true
		}
		return c.PartitionOf(to) == target
	}
	return &bincon.Equivocator{
		EstFor: func(to types.ReplicaID, _ types.Round) (bool, bool) {
			return valueFor(to), true
		},
		AuxFor: func(to types.ReplicaID, _ types.Round) (bool, bool) {
			return valueFor(to), true
		},
		CoordFor: func(to types.ReplicaID, _ types.Round) (bool, bool) {
			return valueFor(to), true
		},
		SuppressDecide: true,
	}
}

// rbcastAttackRBC equivocates on the proposal itself: each honest
// partition receives (and is echoed) its own variant.
func (c *Coalition) rbcastAttackRBC(self types.ReplicaID) *rbc.Equivocator {
	return &rbc.Equivocator{
		InitFor:       func(to types.ReplicaID) []byte { return nil }, // bound later
		EchoDigestFor: c.echoForPartition,
	}
}

// echoForPartition picks which digest a deceitful replica echoes (and
// readies) toward a recipient: the variant registered for the recipient's
// partition, the partition-0 variant for fellow coalition members, and
// honest behaviour for digests that are not attack variants.
func (c *Coalition) echoForPartition(to types.ReplicaID, seen []types.Digest) (types.Digest, bool) {
	if len(seen) == 0 {
		return types.ZeroDigest, false
	}
	if c.deceitfulSet[to] {
		// Fellow coalition members echo a consistent variant: the one
		// registered for the lowest partition, else the first seen.
		best := -1
		var bestD types.Digest
		for _, d := range seen {
			if dp, known := c.variantPartition(d); known && (best == -1 || dp < best) {
				best = dp
				bestD = d
			}
		}
		if best >= 0 {
			return bestD, true
		}
		return seen[0], true
	}
	p := c.PartitionOf(to)
	for _, d := range seen {
		if dp, known := c.variantPartition(d); known && dp == p {
			return d, true
		}
	}
	// Unknown digest (honest slot): echo honestly.
	if _, known := c.variantPartition(seen[0]); !known {
		return seen[0], true
	}
	return types.ZeroDigest, false
}

// BindRBCastPayload finalizes the rbcast equivocator with per-partition
// payload variants derived from the base payload.
func (c *Coalition) BindRBCastPayload(self types.ReplicaID, adv *sbc.Adversary, base []byte) {
	if adv == nil || adv.RBC == nil {
		return
	}
	variants := make([][]byte, len(c.Partitions))
	for p := range c.Partitions {
		variants[p] = c.VariantPayload(base, p)
	}
	adv.RBC.InitFor = func(to types.ReplicaID) []byte {
		if c.deceitfulSet[to] {
			return variants[0]
		}
		if p := c.PartitionOf(to); p >= 0 {
			return variants[p]
		}
		return variants[0]
	}
}
