package adversary

import (
	"testing"

	"github.com/zeroloss/zlb/internal/types"
)

func members(n int) []types.ReplicaID {
	out := make([]types.ReplicaID, n)
	for i := range out {
		out[i] = types.ReplicaID(i + 1)
	}
	return out
}

func TestMaxBranches(t *testing.T) {
	cases := []struct {
		n, d, want int
	}{
		{90, 49, 3}, // paper: 3 branches for d < 5n/9
		{9, 4, 2},
		{9, 6, 3}, // quorum(9)=6: coalition at quorum → honest count branches? d=6: den=0 → n−d=3
		{10, 5, 2},
		{100, 55, 3},
		{9, 2, 1},
	}
	for _, c := range cases {
		if got := MaxBranches(c.n, c.d); got != c.want {
			t.Errorf("MaxBranches(%d, %d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestCoalitionPartitioning(t *testing.T) {
	c := NewCoalition(AttackBinary, members(9), 4, 2)
	if len(c.Deceitful) != 4 {
		t.Fatalf("deceitful = %v", c.Deceitful)
	}
	if c.Branches() != 2 {
		t.Fatalf("branches = %d", c.Branches())
	}
	// Honest replicas all have a partition; deceitful are −1.
	seen := map[int]int{}
	for _, id := range members(9) {
		p := c.PartitionOf(id)
		if c.IsDeceitful(id) {
			if p != -1 {
				t.Fatalf("deceitful %v in partition %d", id, p)
			}
			continue
		}
		if p < 0 || p >= 2 {
			t.Fatalf("honest %v in partition %d", id, p)
		}
		seen[p]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("unbalanced partitions: %v", seen)
	}
	// Unknown replicas (pool) are also −1 so they avoid partition delays.
	if c.PartitionOf(types.ReplicaID(99)) != -1 {
		t.Fatal("unknown replica assigned a partition")
	}
}

func TestBranchesClampedToMax(t *testing.T) {
	c := NewCoalition(AttackBinary, members(9), 4, 10)
	if c.Branches() > MaxBranches(9, 4) {
		t.Fatalf("branches %d exceed the conflicting-histories bound", c.Branches())
	}
}

func TestSBCAdversaryOnlyForCoalition(t *testing.T) {
	c := NewCoalition(AttackBinary, members(9), 4, 2)
	if c.SBCAdversary(5) != nil {
		t.Fatal("honest replica received attack wiring")
	}
	adv := c.SBCAdversary(1)
	if adv == nil || adv.Bin == nil {
		t.Fatal("deceitful replica missing attack wiring")
	}
	// Binary attack: RBC stays honest (nil), only votes split.
	if adv.RBC != nil {
		t.Fatal("binary attack must not fork proposals")
	}
	// Attacked slot equivocator splits per-recipient.
	eq := adv.Bin(1)
	if eq == nil || eq.AuxFor == nil {
		t.Fatal("attacked slot has no vote script")
	}
	target := c.targetPart[1]
	for _, id := range members(9) {
		if c.IsDeceitful(id) {
			continue
		}
		v, ok := eq.AuxFor(id, 0)
		if !ok {
			t.Fatalf("vote suppressed for %v", id)
		}
		if want := c.PartitionOf(id) == target; v != want {
			t.Fatalf("vote for %v = %v, want %v", id, v, want)
		}
	}
	// Honest slots: no vote script, but decide forwarding suppressed.
	hq := adv.Bin(7)
	if hq == nil || hq.AuxFor != nil || !hq.SuppressDecide {
		t.Fatal("honest-slot wiring wrong")
	}
}

func TestRBCastAdversaryWiring(t *testing.T) {
	c := NewCoalition(AttackRBCast, members(9), 4, 2)
	adv := c.SBCAdversary(2)
	if adv == nil || adv.RBC == nil || adv.RBC.EchoDigestFor == nil {
		t.Fatal("rbcast attack missing RBC equivocator")
	}
	if adv.RBCFor == nil || adv.RBCFor(1) == nil {
		t.Fatal("fellow-coalition echo split missing")
	}
	if adv.RBCFor(5) != nil {
		t.Fatal("honest slot got an echo split")
	}
	// Variant routing: digests registered per partition steer echoes.
	c.RegisterVariant(types.Hash([]byte("vA")), 0)
	c.RegisterVariant(types.Hash([]byte("vB")), 1)
	seen := []types.Digest{types.Hash([]byte("vA")), types.Hash([]byte("vB"))}
	for _, id := range members(9) {
		if c.IsDeceitful(id) {
			continue
		}
		d, ok := c.echoForPartition(id, seen)
		if !ok {
			t.Fatalf("echo suppressed for honest %v", id)
		}
		if want := seen[c.PartitionOf(id)]; d != want {
			t.Fatalf("echo for %v routed wrong variant", id)
		}
	}
	// Unregistered digests (honest slots) are echoed honestly.
	other := []types.Digest{types.Hash([]byte("honest-proposal"))}
	if d, ok := c.echoForPartition(5, other); !ok || d != other[0] {
		t.Fatal("honest digest not echoed")
	}
}

func TestVariantPayloadRegistersDigest(t *testing.T) {
	c := NewCoalition(AttackRBCast, members(9), 4, 2)
	base := []byte("base-payload")
	v0 := c.VariantPayload(base, 0)
	v1 := c.VariantPayload(base, 1)
	if types.Hash(v0) == types.Hash(v1) {
		t.Fatal("variants collide")
	}
	if p, ok := c.digestPartition[types.Hash(v0)]; !ok || p != 0 {
		t.Fatal("variant 0 not registered")
	}
	if p, ok := c.digestPartition[types.Hash(v1)]; !ok || p != 1 {
		t.Fatal("variant 1 not registered")
	}
}

func TestAttackString(t *testing.T) {
	for _, a := range []Attack{AttackNone, AttackBinary, AttackRBCast} {
		if a.String() == "" {
			t.Fatalf("attack %d unnamed", a)
		}
	}
}

func TestNoAttackNoAdversary(t *testing.T) {
	c := NewCoalition(AttackNone, members(9), 4, 2)
	if c.SBCAdversary(1) != nil {
		t.Fatal("AttackNone produced attack wiring")
	}
}
